package dataframe

import (
	"testing"

	"mira/internal/analysis"
	"mira/internal/ir"
)

func TestProgramVariants(t *testing.T) {
	full := New(Config{Rows: 128, Seed: 1})
	fp, _ := full.Program().Func("pipeline")
	if len(fp.Body) != 1 {
		t.Fatalf("full pipeline has %d stmts, want 1 query loop", len(fp.Body))
	}
	if loop, ok := fp.Body[0].(*ir.Loop); !ok || len(loop.Body) != 3 {
		t.Fatalf("query loop malformed: %T", fp.Body[0])
	}
	filter := New(Config{Rows: 128, Seed: 1, FilterOnly: true})
	fo, _ := filter.Program().Func("pipeline")
	if len(fo.Body) != 1 {
		t.Fatalf("filter-only pipeline has %d calls", len(fo.Body))
	}
	batch := New(Config{Rows: 128, Seed: 1, BatchJobOnly: true})
	bo, _ := batch.Program().Func("pipeline")
	if len(bo.Body) != 1 {
		t.Fatalf("batch-only pipeline has %d calls", len(bo.Body))
	}
}

func TestBatchJobIsFusable(t *testing.T) {
	w := New(Config{Rows: 256, Seed: 1, BatchJobOnly: true})
	r, err := analysis.Analyze(w.Program(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	fr := r.Funcs["avgMinMax"]
	if len(fr.Fusions) == 0 {
		t.Fatal("the three operator loops were not detected as fusable")
	}
}

func TestFilterPartHasParams(t *testing.T) {
	w := New(Config{Rows: 128, Seed: 1})
	fp, ok := w.Program().Func("filterPart")
	if !ok {
		t.Fatal("filterPart missing")
	}
	if len(fp.Params) != 3 {
		t.Fatalf("filterPart params %v", fp.Params)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := New(Config{Rows: 512, Seed: 2014})
	b := New(Config{Rows: 512, Seed: 2014})
	pa, fa := a.Columns()
	pb, fb := b.Columns()
	for i := range pa {
		if pa[i] != pb[i] || fa[i] != fb[i] {
			t.Fatal("same seed produced different tables")
		}
	}
	c := New(Config{Rows: 512, Seed: 2015})
	pc, _ := c.Columns()
	same := true
	for i := range pa {
		if pa[i] != pc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical payment columns")
	}
}

func TestReferenceInvariants(t *testing.T) {
	w := New(Config{Rows: 1024, Seed: 3})
	e := w.Reference()
	if e.Min > e.Avg || e.Avg > e.Max {
		t.Fatalf("min %g avg %g max %g not ordered", e.Min, e.Avg, e.Max)
	}
	if e.FilterCount <= 0 || e.FilterCount >= 1024 {
		t.Fatalf("filter count %d implausible for 4 payment types", e.FilterCount)
	}
	var gs float64
	for _, v := range e.GroupSum {
		if v < 0 {
			t.Fatal("negative group sum")
		}
		gs += v
	}
	if gs == 0 {
		t.Fatal("group sums all zero")
	}
}

func TestProgramValidates(t *testing.T) {
	for _, cfg := range []Config{{Rows: 64, Seed: 1}, {Rows: 64, Seed: 1, FilterOnly: true}, {Rows: 64, Seed: 1, BatchJobOnly: true}} {
		if err := ir.Validate(New(cfg).Program()); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	}
}
