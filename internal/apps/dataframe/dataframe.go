// Package dataframe reproduces the paper's DataFrame workload [34]: columnar
// analytics over a taxi-trip-like table. The operators mirror the
// evaluation's jobs:
//
//   - avg/min/max over one column as three consecutive loops — the
//     loop-fusion / batching job of Fig. 23;
//   - a filter writing matching fares to a result vector — the
//     writable-shared multithreading job of Fig. 25;
//   - a group-by-passenger-count aggregation (indirect writes into a small
//     histogram).
//
// The input is a deterministic synthetic generator with the NYC-taxi column
// schema (the paper trains on one year of the dataset and tests on others;
// we emulate train/test inputs with different seeds).
package dataframe

import (
	"encoding/binary"
	"fmt"
	"math"

	"mira/internal/exec"
	"mira/internal/ir"
	"mira/internal/sim"
	"mira/internal/workload"
)

// Config sizes the workload.
type Config struct {
	// Rows is the table length.
	Rows int64
	// Seed selects the "input year" (train vs test inputs).
	Seed uint64
	// FilterOnly restricts the program to the filter operator (Fig. 25's
	// multithreaded job).
	FilterOnly bool
	// BatchJobOnly restricts the program to the avg/min/max job
	// (Fig. 23).
	BatchJobOnly bool
	// CreditRate is the fraction of rows with payment type 1 (the
	// filter's match rate). Zero means the default 0.25. Different
	// "input years" with different rates drive the §3 input-adaptation
	// tests.
	CreditRate float64
	// Queries repeats the pipeline (an analytics session runs many
	// queries over one table); zero means 3. Single-operator variants
	// (FilterOnly/BatchJobOnly) always run once.
	Queries int64
}

// DefaultConfig is the harness size.
func DefaultConfig() Config { return Config{Rows: 1 << 16, Seed: 2014} }

// Workload implements workload.Workload.
type Workload struct {
	cfg  Config
	prog *ir.Program
}

// New builds the workload.
func New(cfg Config) *Workload {
	if cfg.Rows == 0 {
		cfg = DefaultConfig()
	}
	return &Workload{cfg: cfg, prog: build(cfg)}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "dataframe" }

// Program implements workload.Workload.
func (w *Workload) Program() *ir.Program { return w.prog }

// Params implements workload.Workload.
func (w *Workload) Params() map[string]exec.Value { return nil }

// Config returns the sizing.
func (w *Workload) Config() Config { return w.cfg }

// zones is the group-by key space: a quarter of the row count, as a city's
// (zone, hour) key space relates to a day of trips.
func zones(cfg Config) int64 {
	z := cfg.Rows / 4
	if z < 16 {
		z = 16
	}
	return z
}

// FullMemoryBytes implements workload.Workload.
func (w *Workload) FullMemoryBytes() int64 {
	// fare + distance + passengers + payment + zone + result columns,
	// plus aggregation outputs.
	return w.cfg.Rows*8*6 + zones(w.cfg)*8 + 64*8 + 4*8
}

func build(cfg Config) *ir.Program {
	b := ir.NewBuilder("dataframe")
	b.FloatArray("fare", cfg.Rows)
	b.FloatArray("distance", cfg.Rows)
	b.IntArray("passengers", cfg.Rows)
	b.IntArray("payment", cfg.Rows)
	b.IntArray("zone", cfg.Rows)        // pickup-zone id per trip
	b.FloatArray("result", cfg.Rows)    // filter output vector
	b.FloatArray("groupsum", 64)        // per-passenger-count sums
	b.FloatArray("zonesum", zones(cfg)) // per-zone distance sums (large key space)
	b.FloatArray("stats", 4)            // avg, min, max, filter count

	// avgMinMax: three consecutive loops over the fare column (the
	// paper's Fig. 23 job, written the naive way so the compiler must
	// discover the fusion).
	amm := b.Func("avgMinMax")
	sum := amm.Var(ir.CF(0))
	amm.Loop(ir.C(0), ir.C(cfg.Rows), ir.C(1), func(i ir.Expr) {
		v := amm.Load("fare", i, "")
		amm.Set(sum, ir.Add(ir.R(sum.ID), v))
	})
	minV := amm.Var(ir.CF(math.MaxFloat64))
	amm.Loop(ir.C(0), ir.C(cfg.Rows), ir.C(1), func(i ir.Expr) {
		v := amm.Load("fare", i, "")
		amm.Set(minV, ir.Min(ir.R(minV.ID), v))
	})
	maxV := amm.Var(ir.CF(-math.MaxFloat64))
	amm.Loop(ir.C(0), ir.C(cfg.Rows), ir.C(1), func(i ir.Expr) {
		v := amm.Load("fare", i, "")
		amm.Set(maxV, ir.Max(ir.R(maxV.ID), v))
	})
	amm.Store("stats", ir.C(0), "", ir.Div(ir.R(sum.ID), ir.CF(float64(cfg.Rows))))
	amm.Store("stats", ir.C(1), "", ir.R(minV.ID))
	amm.Store("stats", ir.C(2), "", ir.R(maxV.ID))

	// filter: credit-card trips (payment==1) copy their fare to the
	// result vector.
	fl := b.Func("filter")
	count := fl.Var(ir.C(0))
	fl.Loop(ir.C(0), ir.C(cfg.Rows), ir.C(1), func(i ir.Expr) {
		p := fl.Load("payment", i, "")
		fl.If(ir.Eq(p, ir.C(1)), func() {
			v := fl.Load("fare", i, "")
			fl.Store("result", ir.R(count.ID), "", v)
			fl.Set(count, ir.Add(ir.R(count.ID), ir.C(1)))
		}, nil)
	})
	fl.Store("stats", ir.C(3), "", ir.R(count.ID))

	// groupBy: sum distance per passenger count (tiny key space) and per
	// pickup zone (large key space — the indirect, swap-hostile phase of
	// real taxi analytics; zone ids are data-dependent, so the accesses
	// into zonesum are random from the cache's point of view).
	gb := b.Func("groupBy")
	// Each query starts from empty aggregates.
	gb.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		gb.Store("groupsum", i, "", ir.CF(0))
	})
	gb.Loop(ir.C(0), ir.C(zones(cfg)), ir.C(1), func(i ir.Expr) {
		gb.Store("zonesum", i, "", ir.CF(0))
	})
	gb.Loop(ir.C(0), ir.C(cfg.Rows), ir.C(1), func(i ir.Expr) {
		pc := gb.Load("passengers", i, "")
		d := gb.Load("distance", i, "")
		cur := gb.Load("groupsum", pc, "")
		gb.Store("groupsum", pc, "", ir.Add(cur, d))
		z := gb.Load("zone", i, "")
		zcur := gb.Load("zonesum", z, "")
		gb.Store("zonesum", z, "", ir.Add(zcur, d))
	})

	// filterPart: the filter over a row range, writing matches at
	// result[outbase...]. The multithreaded driver (Fig. 25) gives each
	// simulated thread a partition; all threads share the result vector.
	fp := b.Func("filterPart", "start", "end", "outbase")
	cnt := fp.Var(ir.P("outbase"))
	fp.Loop(ir.P("start"), ir.P("end"), ir.C(1), func(i ir.Expr) {
		p := fp.Load("payment", i, "")
		fp.If(ir.Eq(p, ir.C(1)), func() {
			v := fp.Load("fare", i, "")
			fp.Store("result", ir.R(cnt.ID), "", v)
			fp.Set(cnt, ir.Add(ir.R(cnt.ID), ir.C(1)))
		}, nil)
	})
	fp.Return(ir.R(cnt.ID))

	// pipeline: the Fig. 16 job sequence, repeated as an analytics
	// session.
	queries := cfg.Queries
	if queries <= 0 {
		queries = 3
	}
	pl := b.Func("pipeline")
	switch {
	case cfg.FilterOnly:
		pl.Call("filter")
	case cfg.BatchJobOnly:
		pl.Call("avgMinMax")
	default:
		pl.Loop(ir.C(0), ir.C(queries), ir.C(1), func(q ir.Expr) {
			pl.Call("avgMinMax")
			pl.Call("filter")
			pl.Call("groupBy")
		})
	}
	b.SetEntry("pipeline")
	return b.MustProgram()
}

// table is the generated input in native form.
type table struct {
	fare, distance []float64
	passengers     []int64
	payment        []int64
	zone           []int64
}

func (w *Workload) generate() *table {
	rng := sim.NewRNG(w.cfg.Seed)
	t := &table{
		fare:       make([]float64, w.cfg.Rows),
		distance:   make([]float64, w.cfg.Rows),
		passengers: make([]int64, w.cfg.Rows),
		payment:    make([]int64, w.cfg.Rows),
		zone:       make([]int64, w.cfg.Rows),
	}
	nz := int(zones(w.cfg))
	rate := w.cfg.CreditRate
	if rate == 0 {
		rate = 0.25
	}
	for i := int64(0); i < w.cfg.Rows; i++ {
		t.distance[i] = rng.Float64() * 20
		t.fare[i] = 2.5 + t.distance[i]*2.7 + rng.Float64()*5
		t.passengers[i] = int64(rng.Intn(6)) + 1
		if rng.Float64() < rate {
			t.payment[i] = 1
		} else {
			t.payment[i] = []int64{0, 2, 3}[rng.Intn(3)]
		}
		t.zone[i] = int64(rng.Intn(nz))
	}
	return t
}

// Init implements workload.Workload.
func (w *Workload) Init(dst workload.ObjectIniter) error {
	t := w.generate()
	if err := dst.InitObject("fare", floatBytes(t.fare)); err != nil {
		return err
	}
	if err := dst.InitObject("distance", floatBytes(t.distance)); err != nil {
		return err
	}
	if err := dst.InitObject("passengers", intBytes(t.passengers)); err != nil {
		return err
	}
	if err := dst.InitObject("zone", intBytes(t.zone)); err != nil {
		return err
	}
	return dst.InitObject("payment", intBytes(t.payment))
}

func floatBytes(xs []float64) []byte {
	out := make([]byte, len(xs)*8)
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(x))
	}
	return out
}

func intBytes(xs []int64) []byte {
	out := make([]byte, len(xs)*8)
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(x))
	}
	return out
}

// Columns exposes the generated payment and fare columns for external
// oracles (the multithreaded filter driver).
func (w *Workload) Columns() (payment []int64, fare []float64) {
	t := w.generate()
	return t.payment, t.fare
}

// Expected computes the operator results natively, replicating the IR's
// evaluation order exactly so floating-point results match bit for bit.
type Expected struct {
	Avg, Min, Max float64
	FilterCount   int64
	GroupSum      [64]float64
	ZoneSum       []float64
}

// Reference computes the oracle.
func (w *Workload) Reference() Expected {
	t := w.generate()
	var e Expected
	var sum float64
	for _, v := range t.fare {
		sum += v
	}
	e.Avg = sum / float64(w.cfg.Rows)
	e.Min = math.MaxFloat64
	e.Max = -math.MaxFloat64
	for _, v := range t.fare {
		if v < e.Min {
			e.Min = v
		}
		if v > e.Max {
			e.Max = v
		}
	}
	e.ZoneSum = make([]float64, zones(w.cfg))
	for i := int64(0); i < w.cfg.Rows; i++ {
		if t.payment[i] == 1 {
			e.FilterCount++
		}
		e.GroupSum[t.passengers[i]] += t.distance[i]
		e.ZoneSum[t.zone[i]] += t.distance[i]
	}
	return e
}

// Verify implements workload.Verifier.
func (w *Workload) Verify(d workload.ObjectDumper) error {
	e := w.Reference()
	stats, err := d.DumpObject("stats")
	if err != nil {
		return err
	}
	get := func(i int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(stats[i*8:]))
	}
	if !w.cfg.FilterOnly {
		if got := get(0); math.Abs(got-e.Avg) > 1e-9 {
			return fmt.Errorf("dataframe: avg %g, want %g", got, e.Avg)
		}
		if got := get(1); got != e.Min {
			return fmt.Errorf("dataframe: min %g, want %g", got, e.Min)
		}
		if got := get(2); got != e.Max {
			return fmt.Errorf("dataframe: max %g, want %g", got, e.Max)
		}
	}
	if !w.cfg.BatchJobOnly {
		if got := int64(get(3)); got != e.FilterCount {
			return fmt.Errorf("dataframe: filter count %d, want %d", got, e.FilterCount)
		}
	}
	if !w.cfg.FilterOnly && !w.cfg.BatchJobOnly {
		gs, err := d.DumpObject("groupsum")
		if err != nil {
			return err
		}
		for i := 0; i < 64; i++ {
			got := math.Float64frombits(binary.LittleEndian.Uint64(gs[i*8:]))
			if math.Abs(got-e.GroupSum[i]) > 1e-6 {
				return fmt.Errorf("dataframe: groupsum[%d] = %g, want %g", i, got, e.GroupSum[i])
			}
		}
		zs, err := d.DumpObject("zonesum")
		if err != nil {
			return err
		}
		for i := range e.ZoneSum {
			got := math.Float64frombits(binary.LittleEndian.Uint64(zs[i*8:]))
			if math.Abs(got-e.ZoneSum[i]) > 1e-6 {
				return fmt.Errorf("dataframe: zonesum[%d] = %g, want %g", i, got, e.ZoneSum[i])
			}
		}
	}
	return nil
}
