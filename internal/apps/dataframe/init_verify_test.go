package dataframe

import (
	"encoding/binary"
	"math"
	"testing"
)

type memStore map[string][]byte

func (m memStore) InitObject(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m[name] = cp
	return nil
}

func (m memStore) DumpObject(name string) ([]byte, error) {
	return m[name], nil
}

func TestInitImageShapes(t *testing.T) {
	w := New(Config{Rows: 256, Seed: 3})
	st := memStore{}
	if err := w.Init(st); err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"fare", "distance", "passengers", "zone", "payment"} {
		if got := len(st[col]); got != 256*8 {
			t.Fatalf("column %q image %d bytes, want %d", col, got, 256*8)
		}
	}
	// Generated domains: passengers in [0,64), zone in [0,zones), payment
	// in a small code set.
	z := zones(w.Config())
	for i := 0; i < 256; i++ {
		p := int64(binary.LittleEndian.Uint64(st["passengers"][i*8:]))
		if p < 0 || p >= 64 {
			t.Fatalf("passengers[%d] = %d out of range", i, p)
		}
		zn := int64(binary.LittleEndian.Uint64(st["zone"][i*8:]))
		if zn < 0 || zn >= z {
			t.Fatalf("zone[%d] = %d out of range (zones=%d)", i, zn, z)
		}
	}
}

// TestVerifyAgainstReference synthesizes the final result images from the
// package's own oracle and checks Verify accepts them and rejects
// corruption — without running any far-memory system.
func TestVerifyAgainstReference(t *testing.T) {
	w := New(Config{Rows: 512, Seed: 6})
	st := memStore{}
	if err := w.Init(st); err != nil {
		t.Fatal(err)
	}
	e := w.Reference()
	stats := make([]byte, 4*8)
	binary.LittleEndian.PutUint64(stats[0:], math.Float64bits(e.Avg))
	binary.LittleEndian.PutUint64(stats[8:], math.Float64bits(e.Min))
	binary.LittleEndian.PutUint64(stats[16:], math.Float64bits(e.Max))
	binary.LittleEndian.PutUint64(stats[24:], math.Float64bits(float64(e.FilterCount)))
	st["stats"] = stats
	gs := make([]byte, 64*8)
	for i, v := range e.GroupSum {
		binary.LittleEndian.PutUint64(gs[i*8:], math.Float64bits(v))
	}
	st["groupsum"] = gs
	zs := make([]byte, len(e.ZoneSum)*8)
	for i, v := range e.ZoneSum {
		binary.LittleEndian.PutUint64(zs[i*8:], math.Float64bits(v))
	}
	st["zonesum"] = zs

	if err := w.Verify(st); err != nil {
		t.Fatalf("reference image rejected: %v", err)
	}

	binary.LittleEndian.PutUint64(st["zonesum"][0:], math.Float64bits(e.ZoneSum[0]+1))
	if err := w.Verify(st); err == nil {
		t.Fatal("corrupted zonesum accepted")
	}
	binary.LittleEndian.PutUint64(st["zonesum"][0:], math.Float64bits(e.ZoneSum[0]))

	binary.LittleEndian.PutUint64(st["stats"][0:], math.Float64bits(e.Avg+1))
	if err := w.Verify(st); err == nil {
		t.Fatal("corrupted avg accepted")
	}
}

// Variant configs skip the checks for results their pipelines don't
// produce.
func TestVerifyVariantScopes(t *testing.T) {
	// FilterOnly: only the filter count is checked.
	w := New(Config{Rows: 128, Seed: 2, FilterOnly: true})
	st := memStore{}
	if err := w.Init(st); err != nil {
		t.Fatal(err)
	}
	e := w.Reference()
	stats := make([]byte, 4*8)
	binary.LittleEndian.PutUint64(stats[24:], math.Float64bits(float64(e.FilterCount)))
	st["stats"] = stats
	if err := w.Verify(st); err != nil {
		t.Fatalf("filter-only verify: %v", err)
	}

	// BatchJobOnly: only avg/min/max are checked.
	wb := New(Config{Rows: 128, Seed: 2, BatchJobOnly: true})
	stb := memStore{}
	if err := wb.Init(stb); err != nil {
		t.Fatal(err)
	}
	eb := wb.Reference()
	statsb := make([]byte, 4*8)
	binary.LittleEndian.PutUint64(statsb[0:], math.Float64bits(eb.Avg))
	binary.LittleEndian.PutUint64(statsb[8:], math.Float64bits(eb.Min))
	binary.LittleEndian.PutUint64(statsb[16:], math.Float64bits(eb.Max))
	stb["stats"] = statsb
	if err := wb.Verify(stb); err != nil {
		t.Fatalf("batch-only verify: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	w := New(Config{})
	if w.Name() != "dataframe" {
		t.Fatalf("name %q", w.Name())
	}
	if w.Params() != nil {
		t.Fatal("unexpected params")
	}
	def := DefaultConfig()
	if w.Config().Rows != def.Rows {
		t.Fatalf("zero config not defaulted: %+v", w.Config())
	}
	if w.FullMemoryBytes() <= 0 {
		t.Fatal("no footprint")
	}
}
