// Package distagg is the distributed-aggregation application built for the
// scatter-gather offload engine (§4.8 scaled out): a data-heavy,
// compute-light reduction ("agg") and a predicated map-with-count
// ("filter") over an array striped across the cluster. Offloaded, each
// node reduces the stripe ranges it already owns and ships back one
// scalar; fetched, every element crosses the wire.
package distagg

import (
	"encoding/binary"
	"fmt"

	"mira/internal/exec"
	"mira/internal/ir"
	"mira/internal/workload"
)

// Config sizes the workload.
type Config struct {
	// N is the element count (8 B ints).
	N int64
	// K is the filter modulus: filter mode keeps elements divisible by K.
	K int64
	// Seed drives data generation.
	Seed uint64
	// Mode selects the kernel: "agg" (default) sums the array, "filter"
	// writes kept elements through and counts them.
	Mode string
}

// DefaultConfig is the harness size.
func DefaultConfig() Config { return Config{N: 1 << 15, K: 3, Seed: 1, Mode: "agg"} }

// Workload implements workload.Workload.
type Workload struct {
	cfg  Config
	prog *ir.Program
}

// New builds the workload.
func New(cfg Config) *Workload {
	def := DefaultConfig()
	if cfg.N == 0 {
		cfg.N = def.N
	}
	if cfg.K == 0 {
		cfg.K = def.K
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	if cfg.Mode == "" {
		cfg.Mode = def.Mode
	}
	b := ir.NewBuilder("distagg")
	b.IntArray("a", cfg.N)
	b.IntArray("out", cfg.N)
	b.IntArray("result", 2)
	switch cfg.Mode {
	case "agg":
		// One loop-carried sum — the canonical scatter shape: every
		// sub-offload folds its stripe ranges and the combiner adds the
		// partials.
		fb := b.Func("aggAll")
		fb.MarkNoSharedWrites()
		acc := fb.Var(ir.C(0))
		fb.Loop(ir.C(0), ir.C(cfg.N), ir.C(1), func(i ir.Expr) {
			v := fb.Load("a", i, "")
			fb.Set(acc, ir.Add(ir.R(acc.ID), v))
		})
		fb.Store("result", ir.C(0), "", ir.R(acc.ID))
		fb.Return(ir.R(acc.ID))
	case "filter":
		// Predicated map with a count: kept elements write through at the
		// raw induction variable (sub-offload write sets stay disjoint),
		// rejected slots are zeroed so the output is fully defined.
		fb := b.Func("filterAll")
		fb.MarkNoSharedWrites()
		acc := fb.Var(ir.C(0))
		fb.Loop(ir.C(0), ir.C(cfg.N), ir.C(1), func(i ir.Expr) {
			v := fb.Load("a", i, "")
			fb.If(ir.Eq(ir.Mod(v, ir.C(cfg.K)), ir.C(0)), func() {
				fb.Store("out", i, "", v)
				fb.Set(acc, ir.Add(ir.R(acc.ID), ir.C(1)))
			}, func() {
				fb.Store("out", i, "", ir.C(0))
			})
		})
		fb.Store("result", ir.C(1), "", ir.R(acc.ID))
		fb.Return(ir.R(acc.ID))
	default:
		panic(fmt.Sprintf("distagg: unknown mode %q (agg, filter)", cfg.Mode))
	}
	entry := b.Func("run")
	v := entry.CallRet(kernelName(cfg.Mode))
	entry.Return(v)
	b.SetEntry("run")
	return &Workload{cfg: cfg, prog: b.MustProgram()}
}

func kernelName(mode string) string {
	if mode == "filter" {
		return "filterAll"
	}
	return "aggAll"
}

// Name implements workload.Workload.
func (w *Workload) Name() string {
	if w.cfg.Mode == "filter" {
		return "distfilter"
	}
	return "distagg"
}

// Program implements workload.Workload.
func (w *Workload) Program() *ir.Program { return w.prog }

// Params implements workload.Workload.
func (w *Workload) Params() map[string]exec.Value { return nil }

// FullMemoryBytes implements workload.Workload.
func (w *Workload) FullMemoryBytes() int64 { return w.cfg.N*8*2 + 16 }

// Data generates the array contents.
func (w *Workload) Data() []byte {
	data := make([]byte, w.cfg.N*8)
	for i := int64(0); i < w.cfg.N; i++ {
		binary.LittleEndian.PutUint64(data[i*8:], w.elem(i))
	}
	return data
}

func (w *Workload) elem(i int64) uint64 {
	return (uint64(i)*7 + w.cfg.Seed) % 1000
}

// Init implements workload.Workload.
func (w *Workload) Init(t workload.ObjectIniter) error {
	return t.InitObject("a", w.Data())
}

// Verify implements workload.Verifier.
func (w *Workload) Verify(d workload.ObjectDumper) error {
	res, err := d.DumpObject("result")
	if err != nil {
		return err
	}
	if w.cfg.Mode == "filter" {
		var count int64
		want := make([]byte, w.cfg.N*8)
		for i := int64(0); i < w.cfg.N; i++ {
			v := w.elem(i)
			if int64(v)%w.cfg.K == 0 {
				binary.LittleEndian.PutUint64(want[i*8:], v)
				count++
			}
		}
		out, err := d.DumpObject("out")
		if err != nil {
			return err
		}
		for i := int64(0); i < w.cfg.N; i++ {
			got := binary.LittleEndian.Uint64(out[i*8:])
			if exp := binary.LittleEndian.Uint64(want[i*8:]); got != exp {
				return fmt.Errorf("distagg: out[%d] = %d, want %d", i, got, exp)
			}
		}
		if got := int64(binary.LittleEndian.Uint64(res[8:])); got != count {
			return fmt.Errorf("distagg: count %d, want %d", got, count)
		}
		return nil
	}
	var sum int64
	for i := int64(0); i < w.cfg.N; i++ {
		sum += int64(w.elem(i))
	}
	if got := int64(binary.LittleEndian.Uint64(res)); got != sum {
		return fmt.Errorf("distagg: sum %d, want %d", got, sum)
	}
	return nil
}
