// Package apps_test runs the cross-system integration matrix: every
// application must compute identical (verified) results on every far-memory
// system, and the paper's headline ordering must hold at moderate local
// memory.
package apps_test

import (
	"testing"

	"mira/internal/apps/arraysum"
	"mira/internal/apps/dataframe"
	"mira/internal/apps/gpt2"
	"mira/internal/apps/graphtraverse"
	"mira/internal/apps/mcf"
	"mira/internal/apps/seqscan"
	"mira/internal/apps/stridescan"
	"mira/internal/harness"
	"mira/internal/workload"
)

// smallWorkloads returns quick-running instances of every app.
func smallWorkloads() []workload.Workload {
	return []workload.Workload{
		arraysum.New(arraysum.Config{N: 8192, Seed: 1}),
		graphtraverse.New(graphtraverse.Config{Edges: 2048, Nodes: 2048, Passes: 1, Seed: 9}),
		mcf.New(mcf.Config{Arcs: 2048, Nodes: 512, Iterations: 8, WalkLen: 32, Seed: 42}),
		dataframe.New(dataframe.Config{Rows: 8192, Seed: 2014}),
		gpt2.New(gpt2.Config{Layers: 2, DModel: 32, DFF: 64, SeqLen: 16, Seed: 5}),
		seqscan.New(seqscan.Config{N: 4096, Seed: 1}),
		stridescan.New(stridescan.Config{N: 2048, Seed: 1}),
	}
}

func TestEveryAppVerifiesOnEverySystem(t *testing.T) {
	for _, w := range smallWorkloads() {
		budget := w.FullMemoryBytes() / 3
		for _, sys := range []harness.System{harness.Native, harness.Mira, harness.MiraSwap, harness.FastSwap, harness.Leap, harness.AIFM} {
			if sys == harness.AIFM && w.Name() == "gpt2" {
				continue // the paper excludes AIFM from GPT-2 (no tensor ops)
			}
			res, err := harness.Run(sys, w, harness.Options{Budget: budget, Verify: true})
			if err != nil {
				t.Errorf("%s on %s: %v", w.Name(), sys, err)
				continue
			}
			if res.Failed {
				t.Logf("%s on %s: failed to execute (%s) — allowed for AIFM", w.Name(), sys, res.FailReason)
				if sys != harness.AIFM {
					t.Errorf("%s on %s must not fail", w.Name(), sys)
				}
				continue
			}
			if res.Time <= 0 {
				t.Errorf("%s on %s: zero time", w.Name(), sys)
			}
		}
	}
}

func TestMiraBeatsSwapBaselinesEverywhere(t *testing.T) {
	for _, w := range smallWorkloads() {
		budget := w.FullMemoryBytes() / 3
		mira, err := harness.Run(harness.Mira, w, harness.Options{Budget: budget})
		if err != nil {
			t.Fatalf("%s mira: %v", w.Name(), err)
		}
		fs, err := harness.Run(harness.FastSwap, w, harness.Options{Budget: budget})
		if err != nil {
			t.Fatalf("%s fastswap: %v", w.Name(), err)
		}
		if mira.Time > fs.Time {
			t.Errorf("%s: Mira (%v) slower than FastSwap (%v) at 1/3 memory",
				w.Name(), mira.Time, fs.Time)
		} else {
			t.Logf("%s: Mira %v vs FastSwap %v (%.1fx)", w.Name(), mira.Time, fs.Time,
				float64(fs.Time)/float64(mira.Time))
		}
	}
}
