// Package seqscan is a memory-bound sequential read-modify-write scan over
// an array of fat records: each iteration touches two fields of record i and
// writes one back, so the per-line compute is small next to the per-line
// transfer costs. It is the primary workload for the vectored-I/O evaluation
// (batched prefetch amortizes the per-message overheads; the dirty scan
// front exercises the asynchronous write-back pipeline).
package seqscan

import (
	"encoding/binary"
	"fmt"

	"mira/internal/exec"
	"mira/internal/ir"
	"mira/internal/workload"
)

// RecBytes is the record size: big enough that a 2 KB cache line holds only
// 32 records, keeping the scan memory-bound.
const RecBytes = 64

// Config sizes the workload.
type Config struct {
	// N is the record count.
	N int64
	// Seed drives data generation.
	Seed uint64
}

// DefaultConfig is the harness size: 16 Ki records × 64 B = 1 MiB.
func DefaultConfig() Config { return Config{N: 1 << 14, Seed: 1} }

// Workload implements workload.Workload.
type Workload struct {
	cfg  Config
	prog *ir.Program
}

// New builds the workload.
func New(cfg Config) *Workload {
	if cfg.N == 0 {
		cfg = DefaultConfig()
	}
	b := ir.NewBuilder("seqscan")
	b.Object("recs", RecBytes, cfg.N,
		ir.F("key", 0, 8), ir.F("val", 8, 8))
	b.IntArray("result", 1)
	fb := b.Func("scan")
	acc := fb.Var(ir.C(0))
	fb.Loop(ir.C(0), ir.C(cfg.N), ir.C(1), func(i ir.Expr) {
		k := fb.Load("recs", i, "key")
		v := fb.Load("recs", i, "val")
		nv := fb.Let(ir.Add(v, ir.Mul(k, ir.C(3))))
		fb.Store("recs", i, "val", nv)
		fb.Set(acc, ir.Add(ir.R(acc.ID), nv))
	})
	fb.Store("result", ir.C(0), "", ir.R(acc.ID))
	fb.Return(ir.R(acc.ID))
	b.SetEntry("scan")
	return &Workload{cfg: cfg, prog: b.MustProgram()}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "seqscan" }

// Program implements workload.Workload.
func (w *Workload) Program() *ir.Program { return w.prog }

// Params implements workload.Workload.
func (w *Workload) Params() map[string]exec.Value { return nil }

// FullMemoryBytes implements workload.Workload.
func (w *Workload) FullMemoryBytes() int64 { return w.cfg.N*RecBytes + 8 }

func (w *Workload) key(i int64) int64 { return (i*13 + int64(w.cfg.Seed)) % 4096 }
func (w *Workload) val(i int64) int64 { return i * 7 % 1024 }

// Data generates the record array contents.
func (w *Workload) Data() []byte {
	data := make([]byte, w.cfg.N*RecBytes)
	for i := int64(0); i < w.cfg.N; i++ {
		binary.LittleEndian.PutUint64(data[i*RecBytes:], uint64(w.key(i)))
		binary.LittleEndian.PutUint64(data[i*RecBytes+8:], uint64(w.val(i)))
	}
	return data
}

// Init implements workload.Workload.
func (w *Workload) Init(t workload.ObjectIniter) error {
	return t.InitObject("recs", w.Data())
}

// Verify implements workload.Verifier: checks the scalar result and every
// written-back val field (catches lost or reordered write-backs).
func (w *Workload) Verify(d workload.ObjectDumper) error {
	dump, err := d.DumpObject("recs")
	if err != nil {
		return err
	}
	var sum int64
	for i := int64(0); i < w.cfg.N; i++ {
		want := w.val(i) + w.key(i)*3
		got := int64(binary.LittleEndian.Uint64(dump[i*RecBytes+8:]))
		if got != want {
			return fmt.Errorf("seqscan: recs[%d].val = %d, want %d", i, got, want)
		}
		sum += want
	}
	res, err := d.DumpObject("result")
	if err != nil {
		return err
	}
	if got := int64(binary.LittleEndian.Uint64(res)); got != sum {
		return fmt.Errorf("seqscan: result %d, want %d", got, sum)
	}
	return nil
}
