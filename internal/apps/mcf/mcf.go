// Package mcf reproduces the access character of SPEC CPU2006 429.mcf
// (single-depot vehicle scheduling via network simplex): a pricing loop
// that scans the arc array sequentially while reading node potentials
// through arc endpoints (indirect), followed by a potential update that
// chases parent pointers through the node array — "memory accesses highly
// dependent on pointer values and program control flows" (§6.1), the
// least analysis-friendly of the paper's applications.
package mcf

import (
	"encoding/binary"
	"fmt"

	"mira/internal/exec"
	"mira/internal/ir"
	"mira/internal/sim"
	"mira/internal/workload"
)

// Element layouts.
const (
	// ArcBytes: tail(8) head(8) cost(8) flow(8).
	ArcBytes = 32
	// NodeBytes: potential(8) parent(8) + basis-tree payload.
	NodeBytes = 64
)

// Config sizes the workload.
type Config struct {
	// Arcs is the arc count.
	Arcs int64
	// Nodes is the node count.
	Nodes int64
	// Iterations is the number of simplex pivots.
	Iterations int64
	// WalkLen is the parent-chain update length per pivot.
	WalkLen int64
	// Seed drives the deterministic graph generator.
	Seed uint64
}

// DefaultConfig is the harness size (the paper's "smaller graph").
func DefaultConfig() Config {
	return Config{Arcs: 8192, Nodes: 2048, Iterations: 24, WalkLen: 64, Seed: 429}
}

// Workload implements workload.Workload.
type Workload struct {
	cfg  Config
	prog *ir.Program
}

// New builds the workload.
func New(cfg Config) *Workload {
	if cfg.Arcs == 0 {
		cfg = DefaultConfig()
	}
	return &Workload{cfg: cfg, prog: build(cfg)}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "mcf" }

// Program implements workload.Workload.
func (w *Workload) Program() *ir.Program { return w.prog }

// Params implements workload.Workload.
func (w *Workload) Params() map[string]exec.Value { return nil }

// Config returns the sizing.
func (w *Workload) Config() Config { return w.cfg }

// FullMemoryBytes implements workload.Workload.
func (w *Workload) FullMemoryBytes() int64 {
	return w.cfg.Arcs*ArcBytes + w.cfg.Nodes*NodeBytes
}

func build(cfg Config) *ir.Program {
	b := ir.NewBuilder("mcf")
	b.Object("arcs", ArcBytes, cfg.Arcs,
		ir.F("tail", 0, 8), ir.F("head", 8, 8), ir.F("cost", 16, 8), ir.F("flow", 24, 8))
	b.Object("nodes", NodeBytes, cfg.Nodes,
		ir.F("pot", 0, 8), ir.F("parent", 8, 8))

	// price: one pricing scan returning the most negative reduced-cost
	// arc (or -1).
	pf := b.Func("price")
	best := pf.Var(ir.C(-1))
	bestVal := pf.Var(ir.C(0))
	pf.Loop(ir.C(0), ir.C(cfg.Arcs), ir.C(1), func(a ir.Expr) {
		tail := pf.Load("arcs", a, "tail")
		head := pf.Load("arcs", a, "head")
		cost := pf.Load("arcs", a, "cost")
		pt := pf.Load("nodes", tail, "pot")
		ph := pf.Load("nodes", head, "pot")
		rc := pf.Let(ir.Add(cost, ir.Sub(pt, ph)))
		pf.If(ir.Lt(rc, ir.R(bestVal.ID)), func() {
			pf.Set(bestVal, rc)
			pf.Set(best, a)
		}, nil)
	})
	pf.Return(ir.R(best.ID))

	// update: walk the parent chain from the entering arc's tail,
	// adjusting potentials (pointer chasing), then augment flow.
	uf := b.Func("update", "arc", "delta")
	v := uf.Var(uf.Load("arcs", ir.P("arc"), "tail"))
	uf.Loop(ir.C(0), ir.C(cfg.WalkLen), ir.C(1), func(step ir.Expr) {
		pot := uf.Load("nodes", ir.R(v.ID), "pot")
		uf.Store("nodes", ir.R(v.ID), "pot", ir.Add(pot, ir.P("delta")))
		next := uf.Load("nodes", ir.R(v.ID), "parent")
		uf.Set(v, next)
	})
	flow := uf.Load("arcs", ir.P("arc"), "flow")
	uf.Store("arcs", ir.P("arc"), "flow", ir.Add(flow, ir.C(1)))

	// simplex: the pivot loop.
	sf := b.Func("simplex")
	sf.Loop(ir.C(0), ir.C(cfg.Iterations), ir.C(1), func(it ir.Expr) {
		arc := sf.CallRet("price")
		sf.If(ir.Ge(arc, ir.C(0)), func() {
			sf.Call("update", arc, ir.C(1))
		}, nil)
	})
	b.SetEntry("simplex")
	return b.MustProgram()
}

// graph holds the generated input in native form.
type graph struct {
	tail, head, cost []int64
	pot, parent      []int64
}

func (w *Workload) generate() *graph {
	rng := sim.NewRNG(w.cfg.Seed)
	g := &graph{
		tail:   make([]int64, w.cfg.Arcs),
		head:   make([]int64, w.cfg.Arcs),
		cost:   make([]int64, w.cfg.Arcs),
		pot:    make([]int64, w.cfg.Nodes),
		parent: make([]int64, w.cfg.Nodes),
	}
	for i := int64(0); i < w.cfg.Arcs; i++ {
		g.tail[i] = int64(rng.Intn(int(w.cfg.Nodes)))
		g.head[i] = int64(rng.Intn(int(w.cfg.Nodes)))
		g.cost[i] = int64(rng.Intn(1000)) - 500
	}
	for n := int64(0); n < w.cfg.Nodes; n++ {
		g.pot[n] = int64(rng.Intn(100))
		// Parent chains converge toward node 0 (a basis tree rooted at
		// the depot).
		if n == 0 {
			g.parent[n] = 0
		} else {
			g.parent[n] = int64(rng.Intn(int(n)))
		}
	}
	return g
}

// Init implements workload.Workload.
func (w *Workload) Init(t workload.ObjectIniter) error {
	g := w.generate()
	arcs := make([]byte, w.cfg.Arcs*ArcBytes)
	for i := int64(0); i < w.cfg.Arcs; i++ {
		binary.LittleEndian.PutUint64(arcs[i*ArcBytes:], uint64(g.tail[i]))
		binary.LittleEndian.PutUint64(arcs[i*ArcBytes+8:], uint64(g.head[i]))
		binary.LittleEndian.PutUint64(arcs[i*ArcBytes+16:], uint64(g.cost[i]))
	}
	if err := t.InitObject("arcs", arcs); err != nil {
		return err
	}
	nodes := make([]byte, w.cfg.Nodes*NodeBytes)
	for n := int64(0); n < w.cfg.Nodes; n++ {
		binary.LittleEndian.PutUint64(nodes[n*NodeBytes:], uint64(g.pot[n]))
		binary.LittleEndian.PutUint64(nodes[n*NodeBytes+8:], uint64(g.parent[n]))
	}
	return t.InitObject("nodes", nodes)
}

// reference runs the identical algorithm natively.
func (w *Workload) reference() ([]int64, []int64) {
	g := w.generate()
	flow := make([]int64, w.cfg.Arcs)
	for it := int64(0); it < w.cfg.Iterations; it++ {
		best, bestVal := int64(-1), int64(0)
		for a := int64(0); a < w.cfg.Arcs; a++ {
			rc := g.cost[a] + g.pot[g.tail[a]] - g.pot[g.head[a]]
			if rc < bestVal {
				bestVal = rc
				best = a
			}
		}
		if best < 0 {
			continue
		}
		v := g.tail[best]
		for step := int64(0); step < w.cfg.WalkLen; step++ {
			g.pot[v] += 1 // delta is 1 in the IR call
			v = g.parent[v]
		}
		flow[best]++
	}
	return g.pot, flow
}

// Verify implements workload.Verifier.
func (w *Workload) Verify(d workload.ObjectDumper) error {
	wantPot, wantFlow := w.reference()
	nodes, err := d.DumpObject("nodes")
	if err != nil {
		return err
	}
	for n := int64(0); n < w.cfg.Nodes; n++ {
		got := int64(binary.LittleEndian.Uint64(nodes[n*NodeBytes:]))
		if got != wantPot[n] {
			return fmt.Errorf("mcf: node %d potential %d, want %d", n, got, wantPot[n])
		}
	}
	arcs, err := d.DumpObject("arcs")
	if err != nil {
		return err
	}
	for a := int64(0); a < w.cfg.Arcs; a++ {
		got := int64(binary.LittleEndian.Uint64(arcs[a*ArcBytes+24:]))
		if got != wantFlow[a] {
			return fmt.Errorf("mcf: arc %d flow %d, want %d", a, got, wantFlow[a])
		}
	}
	return nil
}
