package mcf

import (
	"encoding/binary"
	"strings"
	"testing"
)

// memStore implements workload.ObjectIniter and workload.ObjectDumper over
// a plain map, so Init/Verify can be exercised without a runtime.
type memStore map[string][]byte

func (m memStore) InitObject(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m[name] = cp
	return nil
}

func (m memStore) DumpObject(name string) ([]byte, error) {
	return m[name], nil
}

func TestInitImageShapes(t *testing.T) {
	w := New(Config{Nodes: 64, Arcs: 256, Iterations: 4, WalkLen: 3, Seed: 9})
	st := memStore{}
	if err := w.Init(st); err != nil {
		t.Fatal(err)
	}
	if got := int64(len(st["arcs"])); got != 256*ArcBytes {
		t.Fatalf("arcs image %d bytes, want %d", got, 256*ArcBytes)
	}
	if got := int64(len(st["nodes"])); got != 64*NodeBytes {
		t.Fatalf("nodes image %d bytes, want %d", got, 64*NodeBytes)
	}
	// Arc endpoints must be valid node indices.
	for i := int64(0); i < 256; i++ {
		tail := binary.LittleEndian.Uint64(st["arcs"][i*ArcBytes:])
		head := binary.LittleEndian.Uint64(st["arcs"][i*ArcBytes+8:])
		if tail >= 64 || head >= 64 {
			t.Fatalf("arc %d endpoints (%d,%d) out of range", i, tail, head)
		}
	}
}

func TestInitDeterministic(t *testing.T) {
	a, b := memStore{}, memStore{}
	if err := New(Config{Nodes: 32, Arcs: 128, Iterations: 2, WalkLen: 2, Seed: 4}).Init(a); err != nil {
		t.Fatal(err)
	}
	if err := New(Config{Nodes: 32, Arcs: 128, Iterations: 2, WalkLen: 2, Seed: 4}).Init(b); err != nil {
		t.Fatal(err)
	}
	for name := range a {
		if string(a[name]) != string(b[name]) {
			t.Fatalf("object %q differs across identical seeds", name)
		}
	}
}

// TestVerifyAgainstReference builds the expected final memory image from
// the package's own native reference and checks Verify accepts it — and
// rejects any corruption of it.
func TestVerifyAgainstReference(t *testing.T) {
	w := New(Config{Nodes: 48, Arcs: 192, Iterations: 6, WalkLen: 4, Seed: 11})
	st := memStore{}
	if err := w.Init(st); err != nil {
		t.Fatal(err)
	}
	wantPot, wantFlow := w.reference()
	for n := range wantPot {
		binary.LittleEndian.PutUint64(st["nodes"][n*NodeBytes:], uint64(wantPot[n]))
	}
	for a := range wantFlow {
		binary.LittleEndian.PutUint64(st["arcs"][a*ArcBytes+24:], uint64(wantFlow[a]))
	}
	if err := w.Verify(st); err != nil {
		t.Fatalf("reference image rejected: %v", err)
	}

	// Corrupt one potential.
	binary.LittleEndian.PutUint64(st["nodes"][0:], uint64(wantPot[0]+99))
	err := w.Verify(st)
	if err == nil || !strings.Contains(err.Error(), "potential") {
		t.Fatalf("corrupted potential accepted: %v", err)
	}
	binary.LittleEndian.PutUint64(st["nodes"][0:], uint64(wantPot[0]))

	// Corrupt one flow.
	binary.LittleEndian.PutUint64(st["arcs"][24:], uint64(wantFlow[0]+1))
	if err := w.Verify(st); err == nil {
		t.Fatal("corrupted flow accepted")
	}
}

func TestAccessors(t *testing.T) {
	w := New(Config{})
	if w.Name() != "mcf" {
		t.Fatalf("name %q", w.Name())
	}
	if w.Params() != nil {
		t.Fatal("unexpected params")
	}
	cfg := w.Config()
	def := DefaultConfig()
	if cfg.Arcs != def.Arcs || cfg.Nodes != def.Nodes {
		t.Fatalf("zero config not defaulted: %+v vs %+v", cfg, def)
	}
	if w.FullMemoryBytes() != def.Arcs*ArcBytes+def.Nodes*NodeBytes {
		t.Fatalf("footprint %d", w.FullMemoryBytes())
	}
}
