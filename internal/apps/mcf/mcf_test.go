package mcf

import (
	"testing"

	"mira/internal/analysis"
)

func TestProgramStructure(t *testing.T) {
	w := New(Config{Arcs: 256, Nodes: 64, Iterations: 4, WalkLen: 8, Seed: 1})
	p := w.Program()
	if p.Entry != "simplex" {
		t.Fatalf("entry %q", p.Entry)
	}
	for _, fn := range []string{"price", "update", "simplex"} {
		if _, ok := p.Func(fn); !ok {
			t.Fatalf("function %q missing", fn)
		}
	}
	if w.FullMemoryBytes() != 256*ArcBytes+64*NodeBytes {
		t.Fatalf("footprint %d", w.FullMemoryBytes())
	}
}

func TestAnalysisSeesMCFCharacter(t *testing.T) {
	// The paper calls MCF the least analysis-friendly app: pricing scans
	// arcs sequentially but reads nodes through arc endpoints, and the
	// update walks parent pointers (self-indirect).
	w := New(Config{Arcs: 256, Nodes: 64, Iterations: 4, WalkLen: 8, Seed: 1})
	r, err := analysis.Analyze(w.Program(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	price := r.Funcs["price"]
	if got := price.Objects["arcs"].Pattern; got != analysis.PatternSequential {
		t.Fatalf("price/arcs pattern %v, want sequential", got)
	}
	if got := price.Objects["nodes"].Pattern; got != analysis.PatternIndirect {
		t.Fatalf("price/nodes pattern %v, want indirect", got)
	}
	update := r.Funcs["update"]
	n := update.Objects["nodes"]
	// The walk seed comes from an arc load and then chases node parent
	// pointers; either source marks the access indirect.
	if n.Pattern != analysis.PatternIndirect {
		t.Fatalf("update/nodes = %v, want indirect", n.Pattern)
	}
	if n.IndirectVia != "nodes" && n.IndirectVia != "arcs" {
		t.Fatalf("update/nodes via %q", n.IndirectVia)
	}
}

func TestReferenceDeterministic(t *testing.T) {
	w := New(Config{Arcs: 512, Nodes: 128, Iterations: 6, WalkLen: 16, Seed: 3})
	p1, f1 := w.reference()
	p2, f2 := w.reference()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("reference potentials nondeterministic")
		}
	}
	var flowTotal int64
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("reference flows nondeterministic")
		}
		flowTotal += f1[i]
	}
	if flowTotal == 0 {
		t.Fatal("no pivots executed — workload degenerate")
	}
	if flowTotal > w.cfg.Iterations {
		t.Fatalf("flow total %d exceeds iteration count", flowTotal)
	}
}

func TestParentChainsTerminateAtRoot(t *testing.T) {
	w := New(Config{Arcs: 64, Nodes: 512, Iterations: 1, WalkLen: 1, Seed: 7})
	g := w.generate()
	for n := int64(1); n < 512; n++ {
		if g.parent[n] >= n {
			t.Fatalf("node %d parent %d not strictly decreasing", n, g.parent[n])
		}
	}
	if g.parent[0] != 0 {
		t.Fatal("root not self-parented")
	}
}
