// Package stridescan is a memory-bound strided read-modify-write scan: the
// loop steps by two records, touching every other 128 B record. The access
// pattern classifies as strided, so it exercises the planner's strided
// prefetch-distance and doorbell-batching decisions on a datapath where
// per-message overheads dominate compute.
package stridescan

import (
	"encoding/binary"
	"fmt"

	"mira/internal/exec"
	"mira/internal/ir"
	"mira/internal/workload"
)

// RecBytes is the record size (16 records per 2 KB line).
const RecBytes = 128

// Stride is the loop step in records.
const Stride = 2

// Config sizes the workload.
type Config struct {
	// N is the record count (the scan visits every Stride-th record).
	N int64
	// Seed drives data generation.
	Seed uint64
}

// DefaultConfig is the harness size: 8 Ki records × 128 B = 1 MiB.
func DefaultConfig() Config { return Config{N: 1 << 13, Seed: 1} }

// Workload implements workload.Workload.
type Workload struct {
	cfg  Config
	prog *ir.Program
}

// New builds the workload.
func New(cfg Config) *Workload {
	if cfg.N == 0 {
		cfg = DefaultConfig()
	}
	b := ir.NewBuilder("stridescan")
	b.Object("recs", RecBytes, cfg.N,
		ir.F("key", 0, 8), ir.F("val", 8, 8))
	b.IntArray("result", 1)
	fb := b.Func("scan")
	acc := fb.Var(ir.C(0))
	fb.Loop(ir.C(0), ir.C(cfg.N), ir.C(Stride), func(i ir.Expr) {
		k := fb.Load("recs", i, "key")
		v := fb.Load("recs", i, "val")
		nv := fb.Let(ir.Add(v, ir.Mul(k, ir.C(5))))
		fb.Store("recs", i, "val", nv)
		fb.Set(acc, ir.Add(ir.R(acc.ID), nv))
	})
	fb.Store("result", ir.C(0), "", ir.R(acc.ID))
	fb.Return(ir.R(acc.ID))
	b.SetEntry("scan")
	return &Workload{cfg: cfg, prog: b.MustProgram()}
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "stridescan" }

// Program implements workload.Workload.
func (w *Workload) Program() *ir.Program { return w.prog }

// Params implements workload.Workload.
func (w *Workload) Params() map[string]exec.Value { return nil }

// FullMemoryBytes implements workload.Workload.
func (w *Workload) FullMemoryBytes() int64 { return w.cfg.N*RecBytes + 8 }

func (w *Workload) key(i int64) int64 { return (i*11 + int64(w.cfg.Seed)) % 8192 }
func (w *Workload) val(i int64) int64 { return i * 3 % 2048 }

// Data generates the record array contents.
func (w *Workload) Data() []byte {
	data := make([]byte, w.cfg.N*RecBytes)
	for i := int64(0); i < w.cfg.N; i++ {
		binary.LittleEndian.PutUint64(data[i*RecBytes:], uint64(w.key(i)))
		binary.LittleEndian.PutUint64(data[i*RecBytes+8:], uint64(w.val(i)))
	}
	return data
}

// Init implements workload.Workload.
func (w *Workload) Init(t workload.ObjectIniter) error {
	return t.InitObject("recs", w.Data())
}

// Verify implements workload.Verifier: every visited record must carry the
// updated val, every skipped record the original.
func (w *Workload) Verify(d workload.ObjectDumper) error {
	dump, err := d.DumpObject("recs")
	if err != nil {
		return err
	}
	var sum int64
	for i := int64(0); i < w.cfg.N; i++ {
		want := w.val(i)
		if i%Stride == 0 {
			want += w.key(i) * 5
			sum += want
		}
		got := int64(binary.LittleEndian.Uint64(dump[i*RecBytes+8:]))
		if got != want {
			return fmt.Errorf("stridescan: recs[%d].val = %d, want %d", i, got, want)
		}
	}
	res, err := d.DumpObject("result")
	if err != nil {
		return err
	}
	if got := int64(binary.LittleEndian.Uint64(res)); got != sum {
		return fmt.Errorf("stridescan: result %d, want %d", got, sum)
	}
	return nil
}
