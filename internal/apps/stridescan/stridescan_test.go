package stridescan

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
)

func TestProgramShape(t *testing.T) {
	w := New(Config{N: 512, Seed: 1})
	p := w.Program()
	if p.Entry != "scan" {
		t.Fatalf("entry %q", p.Entry)
	}
	if err := ir.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestDefaults(t *testing.T) {
	w := New(Config{})
	if w.FullMemoryBytes() != (1<<13)*RecBytes+8 {
		t.Fatalf("default footprint %d", w.FullMemoryBytes())
	}
}

func TestNameAndParams(t *testing.T) {
	w := New(Config{N: 16})
	if w.Name() != "stridescan" {
		t.Fatalf("name %q", w.Name())
	}
	if w.Params() != nil {
		t.Fatal("unexpected params")
	}
}

type memStore map[string][]byte

func (m memStore) InitObject(name string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	m[name] = cp
	return nil
}

func (m memStore) DumpObject(name string) ([]byte, error) { return m[name], nil }

func TestInitAndVerify(t *testing.T) {
	w := New(Config{N: 256, Seed: 1})
	st := memStore{}
	if err := w.Init(st); err != nil {
		t.Fatal(err)
	}
	if len(st["recs"]) != 256*RecBytes {
		t.Fatalf("record image %d bytes", len(st["recs"]))
	}
	// Apply the strided scan by hand, then Verify must accept.
	var sum int64
	for i := int64(0); i < 256; i += Stride {
		nv := w.val(i) + w.key(i)*5
		binary.LittleEndian.PutUint64(st["recs"][i*RecBytes+8:], uint64(nv))
		sum += nv
	}
	res := make([]byte, 8)
	binary.LittleEndian.PutUint64(res, uint64(sum))
	st["result"] = res
	if err := w.Verify(st); err != nil {
		t.Fatalf("correct state rejected: %v", err)
	}
	// Touching a record the stride skips must be caught (the runtime must
	// not dirty or corrupt untouched neighbors that share its lines).
	binary.LittleEndian.PutUint64(st["recs"][101*RecBytes+8:], uint64(w.val(101)+1))
	if err := w.Verify(st); err == nil {
		t.Fatal("corrupted skipped record accepted")
	}
}

// TestGoldenNativeVsMira: the Mira compilation's final memory image must be
// byte-identical to native execution. The stride leaves every other record
// untouched, so this also pins down that partially-dirty lines write back
// without clobbering their clean halves.
func TestGoldenNativeVsMira(t *testing.T) {
	for _, n := range []int64{64, 1 << 10, 1 << 12} {
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			w := New(Config{N: n, Seed: 1})
			native := runDump(t, w, true)
			mira := runDump(t, w, false)
			for _, obj := range []string{"recs", "result"} {
				if !bytes.Equal(native[obj], mira[obj]) {
					t.Fatalf("object %q: Mira image diverges from native", obj)
				}
			}
			if err := w.Verify(memStore(mira)); err != nil {
				t.Fatalf("golden image fails the oracle: %v", err)
			}
		})
	}
}

// runDump executes the workload natively (everything local) or through the
// full planner+runtime pipeline at a quarter of its footprint, and returns
// the final object images.
func runDump(t *testing.T, w *Workload, native bool) map[string][]byte {
	t.Helper()
	var prog *ir.Program
	var r *rt.Runtime
	var err error
	if native {
		prog = w.Program()
		placements := map[string]rt.Placement{}
		for _, o := range prog.Objects {
			placements[o.Name] = rt.Placement{Kind: rt.PlaceLocal}
		}
		r, err = rt.New(rt.Config{LocalBudget: w.FullMemoryBytes() + (1 << 20), Placements: placements},
			farmem.NewNode(farmem.DefaultNodeConfig()))
		if err != nil {
			t.Fatal(err)
		}
	} else {
		res, err := planner.Plan(w, planner.Options{LocalBudget: w.FullMemoryBytes() / 4, MaxIterations: 3})
		if err != nil {
			t.Fatal(err)
		}
		prog = res.Program
		r, err = rt.New(res.Config, farmem.NewNode(farmem.DefaultNodeConfig()))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Bind(prog); err != nil {
		t.Fatal(err)
	}
	if err := w.Init(r); err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(prog, r, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, o := range prog.Objects {
		buf, err := r.DumpObject(o.Name)
		if err != nil {
			t.Fatalf("dump %s: %v", o.Name, err)
		}
		out[o.Name] = buf
	}
	return out
}
