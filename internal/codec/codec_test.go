package codec

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// rng is a tiny splitmix64 so test inputs are seeded-deterministic without
// importing math/rand.
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func randomBytes(seed uint64, n int) []byte {
	r := rng(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.next())
	}
	return out
}

// seqInts is the seqscan-shaped payload: little-endian incrementing int64s,
// long zero runs between low bytes.
func seqInts(start, n int) []byte {
	out := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(start+i))
	}
	return out
}

func TestByteRunRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		{1, 2, 3},
		bytes.Repeat([]byte{7}, 1),
		bytes.Repeat([]byte{7}, 2),
		bytes.Repeat([]byte{7}, 3),
		bytes.Repeat([]byte{7}, 129),
		bytes.Repeat([]byte{7}, 130),
		bytes.Repeat([]byte{7}, 131),
		bytes.Repeat([]byte{7}, 132),
		bytes.Repeat([]byte{7}, 4096),
		append(bytes.Repeat([]byte{0}, 260), 1, 2, 3, 3, 3, 3, 9),
		randomBytes(1, 333),
		randomBytes(2, 2048),
		seqInts(0, 256),
		seqInts(1000000, 256),
	}
	for i, src := range cases {
		enc := AppendByteRun(nil, src)
		if got := byteRunLen(src); got != len(enc) {
			t.Fatalf("case %d: byteRunLen %d != len(enc) %d", i, got, len(enc))
		}
		dst := make([]byte, len(src))
		n, err := DecodeByteRun(enc, dst)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(src) || !bytes.Equal(dst[:n], src) {
			t.Fatalf("case %d: round trip mismatch (%d bytes, want %d)", i, n, len(src))
		}
	}
}

func TestEncodedLenNeverInflates(t *testing.T) {
	for _, src := range [][]byte{nil, {1}, randomBytes(3, 512), seqInts(5, 128)} {
		if got := EncodedLen(ByteRun, src); got > len(src) {
			t.Fatalf("EncodedLen %d > raw %d", got, len(src))
		}
	}
	if got := EncodedLen(None, []byte{1, 2, 3}); got != 3 {
		t.Fatalf("None EncodedLen = %d, want 3", got)
	}
}

func TestEncodedLenDeterministic(t *testing.T) {
	src := seqInts(42, 512)
	a := EncodedLen(ByteRun, src)
	b := EncodedLen(ByteRun, append([]byte(nil), src...))
	if a != b {
		t.Fatalf("EncodedLen not deterministic: %d vs %d", a, b)
	}
	// The seqscan-shaped payload must compress well: it is the bench's
	// bandwidth-bound >=30% bytes-on-wire case.
	if ratio := float64(a) / float64(len(src)); ratio > 0.7 {
		t.Fatalf("incrementing-int64 payload ratio %.2f, want <= 0.7", ratio)
	}
}

func TestDiffRanges(t *testing.T) {
	base := make([]byte, 64)
	cur := append([]byte(nil), base...)
	if got := DiffRanges(base, cur, 8); got != nil {
		t.Fatalf("identical payloads diff to %v, want none", got)
	}
	cur[5] = 1
	cur[6] = 2
	cur[40] = 3
	rs := DiffRanges(base, cur, 8)
	want := []Range{{Off: 5, Len: 2}, {Off: 40, Len: 1}}
	if len(rs) != len(want) || rs[0] != want[0] || rs[1] != want[1] {
		t.Fatalf("DiffRanges = %v, want %v", rs, want)
	}
	// Changes 3 bytes apart merge under joinGap 8.
	cur2 := append([]byte(nil), base...)
	cur2[10] = 1
	cur2[13] = 1
	rs = DiffRanges(base, cur2, 8)
	if len(rs) != 1 || rs[0] != (Range{Off: 10, Len: 4}) {
		t.Fatalf("joinGap merge: %v, want [{10 4}]", rs)
	}
	// Mismatched lengths fall back to a full-payload range.
	rs = DiffRanges(nil, cur, 8)
	if len(rs) != 1 || rs[0] != (Range{Off: 0, Len: len(cur)}) {
		t.Fatalf("nil base: %v", rs)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	r := rng(9)
	for trial := 0; trial < 50; trial++ {
		n := 1 + int(r.next()%2048)
		base := randomBytes(uint64(trial), n)
		cur := append([]byte(nil), base...)
		edits := int(r.next() % 20)
		for e := 0; e < edits; e++ {
			cur[int(r.next()%uint64(n))] = byte(r.next())
		}
		patch := EncodeDelta(base, cur)
		got := make([]byte, n)
		if err := ApplyDelta(base, patch, got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatalf("trial %d: delta round trip mismatch", trial)
		}
		if edits == 0 && len(patch) != 0 {
			t.Fatalf("trial %d: clean payload produced %d-byte patch", trial, len(patch))
		}
	}
}

func TestApplyDeltaRejectsCorruptPatch(t *testing.T) {
	base := make([]byte, 32)
	cur := append([]byte(nil), base...)
	cur[4] = 9
	patch := EncodeDelta(base, cur)
	dst := make([]byte, 32)
	for i := range patch {
		bad := append([]byte(nil), patch...)
		bad[i] = 0xff
		// Must never panic; errors are fine (out-of-range), and a decode
		// that "succeeds" simply yields different bytes — the transport's
		// decoded-bytes CRC is the integrity check, not the patch format.
		_ = ApplyDelta(base, bad, dst)
	}
	if err := ApplyDelta(base, patch[:len(patch)-1], dst); err == nil {
		t.Fatal("truncated patch decoded without error")
	}
}

func TestCostModel(t *testing.T) {
	m := DefaultCostModel()
	if m.EncodeCost(0) != m.PerOp || m.DecodeCost(0) != m.PerOp {
		t.Fatal("zero-byte cost must equal PerOp")
	}
	if m.EncodeCost(2048) <= m.EncodeCost(0) {
		t.Fatal("encode cost must grow with payload")
	}
	// The inline engine must stay below the default wire cost (0.16 ns/B)
	// or compression could never win on bandwidth-bound sections.
	perByte := float64(m.EncodeCost(1<<20)-m.PerOp) / float64(1<<20)
	if perByte >= 0.16 {
		t.Fatalf("encode %.3f ns/B not below wire 0.16 ns/B", perByte)
	}
	if m.DecodeCost(4096) >= m.EncodeCost(4096) {
		t.Fatal("decode must be cheaper than encode under the defaults")
	}
}
