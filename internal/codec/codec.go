// Package codec implements the wire codecs of the compressed far-memory
// data path: a byte-run (RLE) compressor for line/page payloads and a
// delta-from-previous-version encoder for dirty write-back, plus the
// deterministic cost model that charges their CPU time into the virtual
// clock.
//
// The codecs are real: they round-trip actual bytes, so every compressed
// size is a pure function of the payload and two runs of the same workload
// report byte-identical wire traffic. The transport uses EncodedLen to
// charge netmodel.Bandwidth for the encoded payload instead of the raw one
// (a sender that sees encoding inflate falls back to raw — the chosen codec
// ID rides in the message header, which PerMessageOverhead already covers),
// and the runtime uses DiffRanges/EncodeDelta to ship a patch instead of a
// full dirty line.
package codec

import (
	"fmt"

	"mira/internal/sim"
)

// ID identifies a wire codec.
type ID uint8

const (
	// None ships raw bytes (the zero-cost default).
	None ID = iota
	// ByteRun is the LZ-style byte-run (RLE) codec: repeated-byte runs
	// collapse to two-byte tokens, literals are length-prefixed.
	ByteRun
	// Delta encodes a payload as changed ranges against a previous
	// version of the same bytes (write-back patches).
	Delta
)

func (id ID) String() string {
	switch id {
	case None:
		return "none"
	case ByteRun:
		return "byterun"
	case Delta:
		return "delta"
	default:
		return fmt.Sprintf("codec(%d)", uint8(id))
	}
}

// ByteRun token format: a control byte c followed by its operand —
//
//	c < 0x80:  literal run; the next c+1 bytes (1..128) are copied verbatim
//	c >= 0x80: repeat run; the next byte repeats (c-0x80)+minRun times (3..130)
//
// Runs shorter than minRun are cheaper as literals (a repeat token costs
// two bytes), so the encoder only emits repeat tokens for runs of three or
// more equal bytes.
const (
	maxLiteral = 128
	minRun     = 3
	maxRun     = 130
)

// AppendByteRun appends the ByteRun encoding of src to dst and returns the
// extended slice.
func AppendByteRun(dst, src []byte) []byte {
	i := 0
	litStart := 0
	flushLit := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > maxLiteral {
				n = maxLiteral
			}
			dst = append(dst, byte(n-1))
			dst = append(dst, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	for i < len(src) {
		j := i + 1
		for j < len(src) && src[j] == src[i] {
			j++
		}
		run := j - i
		if run >= minRun {
			flushLit(i)
			for run > 0 {
				n := run
				if n > maxRun {
					n = maxRun
				}
				if n < minRun {
					// A 1-2 byte tail after maximal repeat tokens: emit it
					// as single-byte literal tokens (2 bytes each).
					for k := 0; k < n; k++ {
						dst = append(dst, byte(0x00), src[i])
					}
					run = 0
					continue
				}
				dst = append(dst, byte(0x80+(n-minRun)), src[i])
				run -= n
			}
			i = j
			litStart = j
			continue
		}
		i = j
	}
	flushLit(len(src))
	return dst
}

// byteRunLen computes len(AppendByteRun(nil, src)) without allocating the
// encoding — the hot path for wire-length accounting.
func byteRunLen(src []byte) int {
	total := 0
	i := 0
	lit := 0
	flushLit := func() {
		for lit > 0 {
			n := lit
			if n > maxLiteral {
				n = maxLiteral
			}
			total += 1 + n
			lit -= n
		}
	}
	for i < len(src) {
		j := i + 1
		for j < len(src) && src[j] == src[i] {
			j++
		}
		run := j - i
		if run >= minRun {
			flushLit()
			for run > 0 {
				n := run
				if n > maxRun {
					n = maxRun
				}
				if n < minRun {
					total += 2 * n
					run = 0
					continue
				}
				total += 2
				run -= n
			}
		} else {
			lit += run
		}
		i = j
	}
	flushLit()
	return total
}

// DecodeByteRun decodes enc into dst, returning the number of bytes
// produced. dst must be large enough for the decoded payload.
func DecodeByteRun(enc, dst []byte) (int, error) {
	out := 0
	i := 0
	for i < len(enc) {
		c := enc[i]
		i++
		if c < 0x80 {
			n := int(c) + 1
			if i+n > len(enc) || out+n > len(dst) {
				return 0, fmt.Errorf("codec: truncated byterun literal (need %d)", n)
			}
			copy(dst[out:], enc[i:i+n])
			i += n
			out += n
			continue
		}
		n := int(c-0x80) + minRun
		if i >= len(enc) || out+n > len(dst) {
			return 0, fmt.Errorf("codec: truncated byterun repeat (need %d)", n)
		}
		b := enc[i]
		i++
		for k := 0; k < n; k++ {
			dst[out+k] = b
		}
		out += n
	}
	return out, nil
}

// EncodedLen reports the bytes src occupies on the wire under id: the codec
// payload when it wins, len(src) otherwise (raw fallback — a real sender
// would never ship an inflated encoding, and the choice travels in the
// per-message header covered by PerMessageOverhead). None always reports
// len(src).
func EncodedLen(id ID, src []byte) int {
	if id == None || len(src) == 0 {
		return len(src)
	}
	if n := byteRunLen(src); n < len(src) {
		return n
	}
	return len(src)
}

// Ratio reports EncodedLen(ByteRun, sample)/len(sample) — the planner's
// compressibility screen. An empty sample reports 1 (incompressible).
func Ratio(sample []byte) float64 {
	if len(sample) == 0 {
		return 1
	}
	return float64(EncodedLen(ByteRun, sample)) / float64(len(sample))
}

// Range is a half-open changed byte range [Off, Off+Len) of a payload.
type Range struct {
	Off, Len int
}

// DiffRanges compares cur against base (same length) and returns the
// changed ranges, merging ranges separated by fewer than joinGap unchanged
// bytes — every merged gap saves a scatter SGE at the cost of re-shipping
// the gap bytes. A nil/short base yields one full-payload range.
func DiffRanges(base, cur []byte, joinGap int) []Range {
	if len(base) != len(cur) {
		return []Range{{Off: 0, Len: len(cur)}}
	}
	var out []Range
	i := 0
	for i < len(cur) {
		if cur[i] == base[i] {
			i++
			continue
		}
		j := i + 1
		gap := 0
		for j < len(cur) {
			if cur[j] != base[j] {
				gap = 0
				j++
				continue
			}
			if gap+1 >= joinGap {
				break
			}
			gap++
			j++
		}
		out = append(out, Range{Off: i, Len: j - gap - i})
		i = j
	}
	return out
}

// appendUvarint appends v in unsigned LEB128 form.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// uvarint decodes a LEB128 value, returning it and the bytes consumed
// (0 on truncation).
func uvarint(b []byte) (uint64, int) {
	var v uint64
	var s uint
	for i, c := range b {
		if c < 0x80 {
			return v | uint64(c)<<s, i + 1
		}
		v |= uint64(c&0x7f) << s
		s += 7
		if s > 63 {
			return 0, 0
		}
	}
	return 0, 0
}

// EncodeDelta encodes cur as a patch against base: a sequence of
// [offset-delta uvarint][length uvarint][length bytes] tokens with strictly
// increasing offsets. Decoding the patch over base reproduces cur exactly.
func EncodeDelta(base, cur []byte) []byte {
	var out []byte
	prev := 0
	for _, r := range DiffRanges(base, cur, 8) {
		out = appendUvarint(out, uint64(r.Off-prev))
		out = appendUvarint(out, uint64(r.Len))
		out = append(out, cur[r.Off:r.Off+r.Len]...)
		prev = r.Off
	}
	return out
}

// ApplyDelta reconstructs the current version into dst: dst is first filled
// from base, then the patch's ranges are applied.
func ApplyDelta(base, patch, dst []byte) error {
	if len(base) != len(dst) {
		return fmt.Errorf("codec: delta base %d bytes, dst %d", len(base), len(dst))
	}
	copy(dst, base)
	off := 0
	i := 0
	for i < len(patch) {
		d, n := uvarint(patch[i:])
		if n == 0 {
			return fmt.Errorf("codec: truncated delta offset at %d", i)
		}
		i += n
		l, n := uvarint(patch[i:])
		if n == 0 {
			return fmt.Errorf("codec: truncated delta length at %d", i)
		}
		i += n
		off += int(d)
		if off < 0 || int(l) < 0 || off+int(l) > len(dst) || i+int(l) > len(patch) {
			return fmt.Errorf("codec: delta range [%d,+%d) out of bounds", off, l)
		}
		copy(dst[off:off+int(l)], patch[i:i+int(l)])
		i += int(l)
	}
	return nil
}

// CostModel charges the codec's CPU time into simulated time. The defaults
// model an inline (on-NIC) compression engine: a fixed per-operation setup
// cost plus a per-byte streaming cost far below the wire's own per-byte
// cost (0.16 ns/B at the default 6.25 GB/s link), so compression can win on
// bandwidth-bound sections and the planner's per-section verdict decides
// where it actually pays. Every figure is a constant — two runs charge
// identical time.
type CostModel struct {
	// PerOp is the fixed engine setup cost per encode or decode call.
	PerOp sim.Duration
	// EncodeNsPerByte and DecodeNsPerByte are the streaming costs per raw
	// payload byte.
	EncodeNsPerByte float64
	DecodeNsPerByte float64
}

// DefaultCostModel returns the inline-engine calibration (DESIGN.md §14).
func DefaultCostModel() CostModel {
	return CostModel{
		PerOp:           20 * sim.Nanosecond,
		EncodeNsPerByte: 0.02,
		DecodeNsPerByte: 0.01,
	}
}

// EncodeCost is the CPU time to encode n raw bytes.
func (m CostModel) EncodeCost(n int) sim.Duration {
	return m.PerOp + sim.Duration(float64(n)*m.EncodeNsPerByte)
}

// DecodeCost is the CPU time to decode back to n raw bytes.
func (m CostModel) DecodeCost(n int) sim.Duration {
	return m.PerOp + sim.Duration(float64(n)*m.DecodeNsPerByte)
}
