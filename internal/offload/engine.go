// Package offload is the scatter-gather offload engine (§4.8 scaled out to
// the cluster): one offloaded function call is split into per-node
// sub-offloads that each run against the stripe replicas their serving node
// already owns, executed as deterministic sim.Scheduler threads so offload
// compute participates in virtual time alongside everything else.
//
// The engine owns routing (placement-table partitioning), operand/result
// transfer (bounded chunk streams priced by netmodel.Bandwidth), fault
// tolerance (a sub-offload whose node crash-wipes mid-run is re-dispatched
// to a surviving replica), and the idempotence rule that makes re-dispatch
// byte-identical: sub-offloads never write far memory directly — stores are
// staged per sub and committed by one fenced write-back after every sub
// finished, so a lost sub's partial writes simply never happen.
//
// The engine deliberately knows nothing about the IR executor: the caller
// supplies a Runner callback that executes the assigned index ranges
// against a NodeEnv. That keeps the dependency arrow pointing one way
// (exec -> offload) while the runtime only constructs and wires the engine.
package offload

import (
	"errors"
	"fmt"
	"sort"
	"strconv"

	"mira/internal/cluster"
	"mira/internal/codec"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/sim"
	"mira/internal/trace"
)

// ErrNodeLost is returned by NodeEnv accesses (and may be returned by a
// Runner) when the serving node crashed or lost its memory mid-run. The
// engine treats it as re-dispatchable, not fatal.
var ErrNodeLost = errors.New("offload: serving node lost")

// Scalar is a runner result value: one partial accumulator.
type Scalar struct {
	I     int64
	F     float64
	Float bool
}

// Resolver maps object names to their far-memory extent. The runtime
// implements it; the engine uses it for partitioning and address
// resolution without depending on rt.
type Resolver interface {
	ObjectExtent(name string) (base uint64, elemBytes int, count int64, ok bool)
}

// Config parameterizes the engine.
type Config struct {
	// Net is the interconnect cost model shared with the runtime.
	Net netmodel.Config
	// Chunk is the operand/result/commit streaming chunk size in bytes
	// (<= 0 selects netmodel.DefaultStreamChunk).
	Chunk int
	// LocalCost is the far node's local memory access cost charged per
	// element access a sub-offload serves from its own replica.
	LocalCost sim.Duration
}

// Request describes one offloaded call to scatter.
type Request struct {
	// Func is the offloaded function name (trace labeling only).
	Func string
	// Object is the driving object whose placement partitions the work.
	Object string
	// Lo and Hi bound the driving index range [Lo, Hi).
	Lo, Hi int64
	// ArgBytes and ResBytes size the per-sub dispatch and result streams.
	ArgBytes int
	ResBytes int
}

// Runner executes one sub-offload's index ranges against env, charging
// compute to clk and yielding at access boundaries. It returns the partial
// accumulator, or ErrNodeLost if env detected the serving node dying.
type Runner func(clk *sim.Clock, yield func(), ranges [][2]int64, env *NodeEnv) (Scalar, error)

// Stats counts engine activity (test introspection).
type Stats struct {
	// Offloads counts Execute calls that were handled.
	Offloads int
	// Subs counts sub-offloads dispatched (including re-dispatches).
	Subs int
	// Redispatches counts sub-offloads that were lost and re-planned.
	Redispatches int
}

// Engine is the scatter-gather offload engine. Construct one per cluster
// runtime with NewEngine.
type Engine struct {
	pool *cluster.Pool
	res  Resolver
	cfg  Config

	trc    *trace.Buffer
	reg    *trace.Registry
	cOps   map[int]*trace.Counter
	cBytes map[int]*trace.Counter

	stats Stats
}

// NewEngine wires an engine over a cluster pool.
func NewEngine(pool *cluster.Pool, res Resolver, cfg Config) *Engine {
	return &Engine{
		pool:   pool,
		res:    res,
		cfg:    cfg,
		cOps:   map[int]*trace.Counter{},
		cBytes: map[int]*trace.Counter{},
	}
}

// SetTrace attaches the tracing layer: offload.dispatch / offload.exec /
// offload.commit spans on the "offload" buffer plus per-node
// offload.ops{node=N} / offload.bytes{node=N} counters.
func (e *Engine) SetTrace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	e.trc = tr.Buffer("offload")
	e.reg = tr.Registry()
}

// Stats returns a copy of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Chunk reports the effective streaming chunk size.
func (e *Engine) Chunk() int {
	if e.cfg.Chunk > 0 {
		return e.cfg.Chunk
	}
	return netmodel.DefaultStreamChunk
}

// sub is one per-node sub-offload.
type sub struct {
	node   int
	ranges [][2]int64
	elems  int64

	env    *NodeEnv
	val    Scalar
	lost   bool
	failed error

	start   sim.Time
	dispEnd sim.Time
	end     sim.Time
	wire    int64
}

// Execute scatters req across the cluster and gathers the partial results,
// charging all virtual time to clk. It returns handled=false (and no error)
// when the request cannot be partitioned — unknown object, or no surviving
// placement — in which case the caller should fall back to the legacy
// whole-call RPC path. Partials are ordered by ascending first index, so
// combining them in order is deterministic.
func (e *Engine) Execute(clk *sim.Clock, req Request, run Runner) ([]Scalar, bool, error) {
	if e == nil || e.pool == nil {
		return nil, false, nil
	}
	base, elemBytes, count, ok := e.res.ObjectExtent(req.Object)
	if !ok || elemBytes <= 0 {
		return nil, false, nil
	}
	lo, hi := req.Lo, req.Hi
	if lo < 0 {
		lo = 0
	}
	if hi > count {
		hi = count
	}
	if lo >= hi {
		e.stats.Offloads++
		return nil, true, nil
	}

	t0 := clk.Now()
	table := e.pool.Table()
	sort.Slice(table, func(i, j int) bool { return table[i].VBase < table[j].VBase })

	pending, err := e.partition(base, elemBytes, lo, hi, t0, table)
	if err != nil {
		return nil, false, nil // no surviving placement: fall back
	}
	e.stats.Offloads++

	var all, done []*sub
	finish := t0
	for round := 0; len(pending) > 0; round++ {
		if round > e.pool.NodeCount() {
			return nil, true, fmt.Errorf("offload %s: no surviving replica after %d re-dispatch rounds", req.Func, round)
		}
		e.stats.Subs += len(pending)
		all = append(all, pending...)
		g := sim.NewThreadGroup(len(pending), finish)
		sched := sim.NewScheduler(g)
		for i := range pending {
			sb := pending[i]
			sched.Spawn(func(t *sim.Thread) error {
				return e.runSub(t, sb, req, table, run)
			})
		}
		if err := sched.Run(); err != nil {
			return nil, true, err
		}
		join := g.Join()
		var next []*sub
		for _, sb := range pending {
			switch {
			case sb.failed != nil:
				return nil, true, sb.failed
			case sb.lost:
				e.stats.Redispatches++
				for _, r := range sb.ranges {
					re, rerr := e.partition(base, elemBytes, r[0], r[1], join, table)
					if rerr != nil {
						return nil, true, fmt.Errorf("offload %s: %w", req.Func, rerr)
					}
					next = append(next, re...)
				}
			default:
				done = append(done, sb)
			}
		}
		pending = mergeByNode(next)
		finish = join
	}

	clk.AdvanceTo(finish)
	commitStart := clk.Now()
	wire, err := e.commit(clk, done, table)
	if err != nil {
		return nil, true, err
	}

	e.emit(req, t0, commitStart, clk.Now(), wire, all, done)

	sort.Slice(done, func(i, j int) bool { return done[i].ranges[0][0] < done[j].ranges[0][0] })
	out := make([]Scalar, len(done))
	for i, sb := range done {
		out[i] = sb.val
	}
	return out, true, nil
}

// runSub is one sub-offload's thread body: stream the operands in, run the
// ranges, stream the result back. A node loss at any point marks the sub
// lost (never an error — loss is re-dispatchable, and the scheduler runs
// every thread to completion regardless).
func (e *Engine) runSub(t *sim.Thread, sb *sub, req Request, table []cluster.PlacementEntry, run Runner) error {
	clk := t.Clock()
	sb.start = clk.Now()
	defer func() { sb.end = clk.Now() }()
	if e.nodeLost(sb.node, clk.Now()) {
		sb.lost = true
		sb.dispEnd = clk.Now()
		return nil
	}
	bw := e.pool.Transport(sb.node).BW
	clk.AdvanceTo(netmodel.StreamCost(e.cfg.Net, bw, clk.Now(), req.ArgBytes, e.cfg.Chunk))
	sb.wire += int64(req.ArgBytes)
	sb.dispEnd = clk.Now()
	t.Yield()
	if e.nodeLost(sb.node, clk.Now()) {
		sb.lost = true
		return nil
	}
	env := &NodeEnv{eng: e, node: sb.node, table: table, staged: map[uint64][]byte{}}
	sb.env = env
	val, err := run(clk, t.Yield, sb.ranges, env)
	if env.lost || errors.Is(err, ErrNodeLost) {
		sb.lost = true
		return nil
	}
	if err != nil {
		sb.failed = err
		return nil
	}
	clk.AdvanceTo(netmodel.StreamCost(e.cfg.Net, bw, clk.Now(), req.ResBytes, e.cfg.Chunk))
	sb.wire += int64(req.ResBytes)
	t.Yield()
	if e.nodeLost(sb.node, clk.Now()) {
		sb.lost = true
		return nil
	}
	sb.val = val
	return nil
}

// nodeLost reports whether node i cannot serve at instant now: inside a
// crash/partition window, or its memory was wiped and not yet resynced.
func (e *Engine) nodeLost(i int, now sim.Time) bool {
	if inj := e.pool.Injector(i); inj != nil {
		inj.Sync(now)
		if inj.Down(now) {
			return true
		}
	}
	return e.pool.NodeStale(i)
}

// partition assigns every element of [lo, hi) to the first surviving home
// of the placement entry owning its first byte, then merges contiguous
// ranges into one sub per node (ascending node order). An element with no
// surviving home is an error.
func (e *Engine) partition(base uint64, elemBytes int, lo, hi int64, now sim.Time, table []cluster.PlacementEntry) ([]*sub, error) {
	lost := map[int]bool{}
	for i := 0; i < e.pool.NodeCount(); i++ {
		lost[i] = e.nodeLost(i, now)
	}
	byNode := map[int][][2]int64{}
	curNode, curLo := -1, int64(0)
	flush := func(end int64) {
		if curNode >= 0 {
			byNode[curNode] = append(byNode[curNode], [2]int64{curLo, end})
		}
	}
	for el := lo; el < hi; el++ {
		addr := base + uint64(el)*uint64(elemBytes)
		ent := entryFor(table, addr)
		if ent == nil {
			return nil, fmt.Errorf("offload: element %d at %#x outside placement table", el, addr)
		}
		node := -1
		for _, h := range ent.Homes {
			if !lost[h.Node] {
				node = h.Node
				break
			}
		}
		if node < 0 {
			return nil, fmt.Errorf("offload: element %d: every replica lost", el)
		}
		if node != curNode {
			flush(el)
			curNode, curLo = node, el
		}
	}
	flush(hi)
	nodes := make([]int, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	subs := make([]*sub, 0, len(nodes))
	for _, n := range nodes {
		sb := &sub{node: n, ranges: byNode[n]}
		for _, r := range sb.ranges {
			sb.elems += r[1] - r[0]
		}
		subs = append(subs, sb)
	}
	return subs, nil
}

// mergeByNode folds re-planned subs targeting the same node into one.
func mergeByNode(subs []*sub) []*sub {
	if len(subs) <= 1 {
		return subs
	}
	byNode := map[int]*sub{}
	var nodes []int
	for _, sb := range subs {
		if cur, ok := byNode[sb.node]; ok {
			cur.ranges = append(cur.ranges, sb.ranges...)
			cur.elems += sb.elems
			continue
		}
		byNode[sb.node] = sb
		nodes = append(nodes, sb.node)
	}
	sort.Ints(nodes)
	out := make([]*sub, 0, len(nodes))
	for _, n := range nodes {
		sb := byNode[n]
		sort.Slice(sb.ranges, func(i, j int) bool { return sb.ranges[i][0] < sb.ranges[j][0] })
		out = append(out, sb)
	}
	return out
}

// entryFor finds the placement entry covering addr in a VBase-sorted table.
func entryFor(table []cluster.PlacementEntry, addr uint64) *cluster.PlacementEntry {
	i := sort.Search(len(table), func(i int) bool { return table[i].VBase > addr })
	if i == 0 {
		return nil
	}
	ent := &table[i-1]
	if addr >= ent.VBase+ent.Size {
		return nil
	}
	return ent
}

// commit is the fenced write-back: merge every finished sub's staged
// writes (disjoint by the scatter shape), coalesce adjacent extents, and
// stream them back to their serving nodes — chunked, wire-codec-encoded,
// priced on the per-node link — before applying them to the pool with
// replica fan-out. Nothing touches far memory before this point, which is
// what makes mid-run loss recoverable without double-applied results.
func (e *Engine) commit(clk *sim.Clock, done []*sub, table []cluster.PlacementEntry) (int64, error) {
	merged := map[uint64][]byte{}
	for _, sb := range done {
		for a, b := range sb.env.staged {
			merged[a] = b
		}
	}
	if len(merged) == 0 {
		return 0, nil
	}
	addrs := make([]uint64, 0, len(merged))
	for a := range merged {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	type extent struct {
		addr uint64
		data []byte
	}
	var exts []extent
	for _, a := range addrs {
		b := merged[a]
		if n := len(exts); n > 0 && exts[n-1].addr+uint64(len(exts[n-1].data)) == a {
			exts[n-1].data = append(exts[n-1].data, b...)
			continue
		}
		exts = append(exts, extent{addr: a, data: append([]byte(nil), b...)})
	}

	now := clk.Now()
	perNode := map[int][]extent{}
	var nodes []int
	for _, x := range exts {
		n := e.servingNode(x.addr, now, table)
		if _, ok := perNode[n]; !ok {
			nodes = append(nodes, n)
		}
		perNode[n] = append(perNode[n], x)
	}
	sort.Ints(nodes)

	chunk := e.Chunk()
	id := e.pool.WireCodec()
	cm := codec.DefaultCostModel()
	var totalWire int64
	for _, n := range nodes {
		wire := 0
		for _, x := range perNode[n] {
			for off := 0; off < len(x.data); off += chunk {
				end := off + chunk
				if end > len(x.data) {
					end = len(x.data)
				}
				piece := x.data[off:end]
				wire += codec.EncodedLen(id, piece)
				if id != codec.None {
					clk.Advance(cm.EncodeCost(len(piece)))
				}
			}
		}
		bw := e.pool.Transport(n).BW
		clk.AdvanceTo(netmodel.StreamCost(e.cfg.Net, bw, clk.Now(), wire, chunk))
		totalWire += int64(wire)
		e.addBytes(n, int64(wire))
	}
	for _, x := range exts {
		if err := e.pool.Write(x.addr, x.data); err != nil {
			return totalWire, err
		}
	}
	return totalWire, nil
}

// servingNode picks the node a committed extent is attributed to: the
// first surviving home of its placement entry (first home if none survive —
// the write still fans out to every replica).
func (e *Engine) servingNode(addr uint64, now sim.Time, table []cluster.PlacementEntry) int {
	ent := entryFor(table, addr)
	if ent == nil || len(ent.Homes) == 0 {
		return 0
	}
	for _, h := range ent.Homes {
		if !e.nodeLost(h.Node, now) {
			return h.Node
		}
	}
	return ent.Homes[0].Node
}

// emit writes the trace spans and per-node counters for one Execute, in a
// fixed order (dispatch rounds, then node order) so traces are
// byte-deterministic.
func (e *Engine) emit(req Request, t0, commitStart, commitEnd sim.Time, commitWire int64, all, done []*sub) {
	for _, sb := range all {
		e.addBytes(sb.node, sb.wire)
		if sb.env != nil {
			e.addBytes(sb.node, sb.env.remoteWire)
		}
	}
	for _, sb := range done {
		e.addOps(sb.node, sb.elems)
	}
	if e.trc == nil {
		return
	}
	dispEnd := t0
	for _, sb := range all {
		if sb.dispEnd > dispEnd {
			dispEnd = sb.dispEnd
		}
	}
	e.trc.Span(t0, dispEnd, "offload", "offload.dispatch",
		trace.S("func", req.Func), trace.I("subs", int64(len(all))))
	for _, sb := range all {
		outcome := "ok"
		if sb.lost {
			outcome = "lost"
		}
		e.trc.Span(sb.start, sb.end, "offload", "offload.exec",
			trace.S("func", req.Func),
			trace.I("node", int64(sb.node)),
			trace.I("lo", sb.ranges[0][0]),
			trace.I("hi", sb.ranges[len(sb.ranges)-1][1]),
			trace.I("elems", sb.elems),
			trace.S("outcome", outcome))
	}
	e.trc.Span(commitStart, commitEnd, "offload", "offload.commit",
		trace.S("func", req.Func), trace.I("bytes", commitWire))
}

func (e *Engine) addOps(node int, n int64) {
	if e.reg == nil || n == 0 {
		return
	}
	c := e.cOps[node]
	if c == nil {
		c = e.reg.Counter("offload.ops{node=" + strconv.Itoa(node) + "}")
		e.cOps[node] = c
	}
	c.Add(n)
}

func (e *Engine) addBytes(node int, n int64) {
	if e.reg == nil || n == 0 {
		return
	}
	c := e.cBytes[node]
	if c == nil {
		c = e.reg.Counter("offload.bytes{node=" + strconv.Itoa(node) + "}")
		e.cBytes[node] = c
	}
	c.Add(n)
}

// NodeEnv is one sub-offload's view of far memory: reads are served from
// the serving node's own replica when it holds one (local memory cost) and
// from peers over the network otherwise; writes are staged locally and
// only reach the pool at commit time.
type NodeEnv struct {
	eng    *Engine
	node   int
	table  []cluster.PlacementEntry
	staged map[uint64][]byte

	remoteWire int64
	lost       bool
}

// Node reports the serving node index.
func (env *NodeEnv) Node() int { return env.node }

// Slowdown reports the serving node's far-CPU slowdown factor.
func (env *NodeEnv) Slowdown() float64 {
	return env.eng.pool.FarNode(env.node).CPUSlowdown()
}

// Access reads or writes one element field. Writes stage; reads check the
// staging area first (read-your-writes), then the local replica, then fall
// back to a remote one-sided read. It returns ErrNodeLost when the serving
// node died, which the engine turns into a re-dispatch.
func (env *NodeEnv) Access(clk *sim.Clock, name string, elem int64, field ir.Field, buf []byte, write bool) error {
	base, elemBytes, count, ok := env.eng.res.ObjectExtent(name)
	if !ok {
		return fmt.Errorf("offload: access to unknown or local object %q", name)
	}
	if elem < 0 || elem >= count {
		return fmt.Errorf("offload: %s[%d] out of range (count %d)", name, elem, count)
	}
	if len(buf) > field.Bytes {
		buf = buf[:field.Bytes]
	}
	addr := base + uint64(elem)*uint64(elemBytes) + uint64(field.Offset)
	if write {
		cp := make([]byte, len(buf))
		copy(cp, buf)
		env.staged[addr] = cp
		clk.Advance(env.eng.cfg.LocalCost)
		return nil
	}
	if st, okSt := env.staged[addr]; okSt && len(st) >= len(buf) {
		copy(buf, st)
		clk.Advance(env.eng.cfg.LocalCost)
		return nil
	}
	if lbase, okLocal := env.localBase(addr, len(buf)); okLocal {
		if env.checkLost(clk.Now()) {
			return ErrNodeLost
		}
		if err := env.eng.pool.FarNode(env.node).Read(lbase, buf); err != nil {
			return err
		}
		clk.Advance(env.eng.cfg.LocalCost)
		if env.checkLost(clk.Now()) {
			return ErrNodeLost
		}
		return nil
	}
	// Remote replica: untimed pool read (first surviving home), priced as
	// a one-sided read on this sub's clock.
	if env.checkLost(clk.Now()) {
		return ErrNodeLost
	}
	if err := env.eng.pool.Read(addr, buf); err != nil {
		return err
	}
	clk.Advance(env.eng.cfg.Net.OneSidedCost(len(buf)))
	env.remoteWire += int64(len(buf))
	if env.checkLost(clk.Now()) {
		return ErrNodeLost
	}
	return nil
}

// checkLost latches and reports serving-node loss.
func (env *NodeEnv) checkLost(now sim.Time) bool {
	if env.lost {
		return true
	}
	if env.eng.nodeLost(env.node, now) {
		env.lost = true
	}
	return env.lost
}

// localBase resolves addr to an offset in the serving node's own memory if
// the node holds a replica of the whole [addr, addr+n) range.
func (env *NodeEnv) localBase(addr uint64, n int) (uint64, bool) {
	ent := entryFor(env.table, addr)
	if ent == nil || addr+uint64(n) > ent.VBase+ent.Size {
		return 0, false
	}
	for _, h := range ent.Homes {
		if h.Node == env.node {
			return h.Base + (addr - ent.VBase), true
		}
	}
	return 0, false
}
