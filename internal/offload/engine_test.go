package offload_test

import (
	"testing"

	"mira/internal/apps/distagg"
	"mira/internal/cluster"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
)

// planOffloaded plans the distagg workload with every scatter-safe function
// offloaded against a 4-node, R=2 pool and returns the accepted
// program/config pair.
func planOffloaded(t *testing.T, w *distagg.Workload, co cluster.Options) *planner.Result {
	t.Helper()
	res, err := planner.Plan(w, planner.Options{
		LocalBudget: w.FullMemoryBytes() / 4,
		Offload:     "on",
		Cluster:     &co,
	})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if len(res.Offloaded) == 0 {
		t.Fatalf("planner offloaded nothing; distagg's kernel should be scatter-safe")
	}
	return res
}

// runPlanned executes the accepted configuration once, optionally with a
// per-node fault schedule, and returns the runtime (for stats and dumps)
// plus the finish time.
func runPlanned(t *testing.T, w *distagg.Workload, res *planner.Result, co cluster.Options, nodeFaults []*faults.Config) (*rt.Runtime, sim.Time) {
	t.Helper()
	cfg := res.Config
	cocopy := co
	cocopy.Faults = nodeFaults
	cfg.Cluster = &cocopy
	r, err := rt.New(cfg, farmem.NewNode(farmem.DefaultNodeConfig()))
	if err != nil {
		t.Fatalf("rt.New: %v", err)
	}
	if err := r.Bind(res.Program); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := w.Init(r); err != nil {
		t.Fatalf("Init: %v", err)
	}
	ex, err := exec.New(res.Program, r, exec.Options{Params: w.Params()})
	if err != nil {
		t.Fatalf("exec.New: %v", err)
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	return r, clk.Now()
}

// TestOffloadUnderFaults: a sub-offload whose serving node crash-wipes
// mid-run is re-dispatched to a surviving replica, and the staged-commit
// protocol keeps results exactly-once — the final state verifies against
// the native oracle. The crash instant is swept across the run so at least
// one window provably lands inside a sub-offload's execution.
func TestOffloadUnderFaults(t *testing.T) {
	co := cluster.Options{Nodes: 4, Replicas: 2, Seed: 1, StripeBytes: 16 << 10}
	w := distagg.New(distagg.Config{N: 1 << 14, Seed: 3})
	res := planOffloaded(t, w, co)

	// Fault-free reference run: bounds the sweep and checks the plan.
	rref, total := runPlanned(t, w, res, co, nil)
	if err := w.Verify(rref); err != nil {
		t.Fatalf("fault-free verify: %v", err)
	}
	if rref.ScatterEngine().Stats().Offloads == 0 {
		t.Fatalf("fault-free run never reached the scatter engine")
	}

	redispatched := false
	for frac := 1; frac <= 15; frac++ {
		at := sim.Time(uint64(total) * uint64(frac) / 16)
		sched := &faults.Config{
			Seed: 7,
			Schedule: []faults.Event{
				{At: at, Kind: faults.Crash, LoseMemory: true},
				{At: at.Add(sim.Duration(2000)), Kind: faults.Restart},
			},
		}
		rf, _ := runPlanned(t, w, res, co, []*faults.Config{nil, sched, nil, nil})
		if err := w.Verify(rf); err != nil {
			t.Fatalf("crash at %v: verify: %v (results double-applied or lost)", at, err)
		}
		if rf.ScatterEngine().Stats().Redispatches > 0 {
			redispatched = true
		}
	}
	if !redispatched {
		t.Errorf("no crash window in the sweep triggered a sub-offload re-dispatch")
	}
}

// TestOffloadFaultDeterminism: the same crash-wipe schedule produces the
// same finish time and stats on repeated runs.
func TestOffloadFaultDeterminism(t *testing.T) {
	co := cluster.Options{Nodes: 4, Replicas: 2, Seed: 1, StripeBytes: 16 << 10}
	w := distagg.New(distagg.Config{N: 1 << 14, Seed: 3})
	res := planOffloaded(t, w, co)
	_, total := runPlanned(t, w, res, co, nil)
	sched := &faults.Config{
		Seed: 7,
		Schedule: []faults.Event{
			{At: sim.Time(uint64(total) / 2), Kind: faults.Crash, LoseMemory: true},
			{At: sim.Time(uint64(total) / 2).Add(sim.Duration(2000)), Kind: faults.Restart},
		},
	}
	r1, t1 := runPlanned(t, w, res, co, []*faults.Config{nil, sched, nil, nil})
	r2, t2 := runPlanned(t, w, res, co, []*faults.Config{nil, sched, nil, nil})
	if t1 != t2 {
		t.Errorf("faulted run not deterministic: %v vs %v", t1, t2)
	}
	if s1, s2 := r1.ScatterEngine().Stats(), r2.ScatterEngine().Stats(); s1 != s2 {
		t.Errorf("engine stats not deterministic: %+v vs %+v", s1, s2)
	}
}
