package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// traceRun records one interleaving as a string of (tid, time) steps: each
// thread performs its steps, yielding before every one, the way the
// executor yields before every memory operation.
func traceRun(t *testing.T, steps [][]Duration) string {
	t.Helper()
	g := NewThreadGroup(len(steps), 0)
	s := NewScheduler(g)
	var b strings.Builder
	for i := range steps {
		mine := steps[i]
		s.Spawn(func(th *Thread) error {
			for _, d := range mine {
				th.Yield()
				fmt.Fprintf(&b, "%d@%d ", th.ID(), th.Clock().Now())
				th.Clock().Advance(d)
			}
			return nil
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestSchedulerLowestTimeFirst(t *testing.T) {
	// Thread 0 takes long steps, thread 1 short ones: thread 1 must run
	// several steps while thread 0's clock is ahead.
	got := traceRun(t, [][]Duration{{10, 10}, {3, 3, 3, 3}})
	want := "0@0 1@0 1@3 1@6 1@9 0@10 "
	if got != want {
		t.Fatalf("interleaving %q, want %q", got, want)
	}
}

func TestSchedulerTieBreakByID(t *testing.T) {
	// All clocks equal at every step: the lowest id must always win.
	got := traceRun(t, [][]Duration{{5, 5}, {5, 5}, {5, 5}})
	want := "0@0 1@0 2@0 0@5 1@5 2@5 "
	if got != want {
		t.Fatalf("interleaving %q, want %q", got, want)
	}
}

// TestSchedulerDeterminism: the same bodies over the same clocks must
// produce byte-identical interleavings across runs.
func TestSchedulerDeterminism(t *testing.T) {
	steps := [][]Duration{{7, 2, 9}, {1, 1, 1, 20}, {4, 4}, {13}}
	first := traceRun(t, steps)
	for i := 0; i < 10; i++ {
		if got := traceRun(t, steps); got != first {
			t.Fatalf("run %d: interleaving %q differs from %q", i, got, first)
		}
	}
}

// TestSchedulerSymmetricThreadsTidInvariant: for symmetric threads the
// total virtual time must not depend on how tids are numbered. Each
// rotation assigns the same per-thread workloads to different tids.
func TestSchedulerSymmetricThreadsTidInvariant(t *testing.T) {
	work := []Duration{3, 1, 4, 1, 5, 9, 2, 6}
	n := 4
	var elapsed []Duration
	for rot := 0; rot < n; rot++ {
		g := NewThreadGroup(n, 0)
		s := NewScheduler(g)
		for i := 0; i < n; i++ {
			_ = rot // every thread gets the identical step list
			s.Spawn(func(th *Thread) error {
				for _, d := range work {
					th.Yield()
					th.Clock().Advance(d)
				}
				return nil
			})
		}
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		elapsed = append(elapsed, g.Elapsed())
	}
	for i := 1; i < len(elapsed); i++ {
		if elapsed[i] != elapsed[0] {
			t.Fatalf("rotation %d: elapsed %v != %v", i, elapsed[i], elapsed[0])
		}
	}
}

func TestSchedulerErrorLowestID(t *testing.T) {
	g := NewThreadGroup(3, 0)
	s := NewScheduler(g)
	errs := []error{nil, errors.New("thread 1 failed"), errors.New("thread 2 failed")}
	for i := 0; i < 3; i++ {
		e := errs[i]
		s.Spawn(func(th *Thread) error {
			th.Yield()
			th.Clock().Advance(Duration(th.ID()+1) * Microsecond)
			return e
		})
	}
	// All threads run to completion; the lowest-id error is reported.
	if err := s.Run(); err == nil || err.Error() != "thread 1 failed" {
		t.Fatalf("err = %v, want thread 1 failed", err)
	}
}

func TestSchedulerSpawnCountMismatch(t *testing.T) {
	g := NewThreadGroup(2, 0)
	s := NewScheduler(g)
	s.Spawn(func(*Thread) error { return nil })
	if err := s.Run(); err == nil {
		t.Fatal("mismatched spawn count accepted")
	}
}

func TestSchedulerPanicBecomesError(t *testing.T) {
	g := NewThreadGroup(2, 0)
	s := NewScheduler(g)
	s.Spawn(func(th *Thread) error { th.Yield(); return nil })
	s.Spawn(func(*Thread) error { panic("boom") })
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic surfaced", err)
	}
}
