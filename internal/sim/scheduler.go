package sim

import "fmt"

// Scheduler interleaves simulated threads deterministically on virtual
// time: it always resumes the not-yet-finished thread whose clock shows the
// lowest instant, breaking ties by thread id (lowest wins). Threads hand
// control back at every memory-operation boundary via Thread.Yield, so
// shared-resource state (cache sections, the link's busy horizon, the swap
// lock) is mutated in virtual-time event order — contention is emergent
// rather than modeled in closed form.
//
// Exactly one thread body runs at any real instant: the scheduler and each
// thread goroutine alternate through an unbuffered channel handoff, so the
// interleaving carries no Go-scheduler or wall-clock nondeterminism and the
// same bodies over the same clocks replay byte-identically.
type Scheduler struct {
	g       *ThreadGroup
	threads []*Thread
	running bool
}

// Thread is one simulated thread registered with a Scheduler. Its body
// receives the Thread and must call Yield at every point where another
// thread could observe or contend with its next shared-state operation.
type Thread struct {
	id     int
	clk    *Clock
	body   func(*Thread) error
	resume chan struct{}
	paused chan struct{}
	done   bool
	err    error
}

// ID reports the thread's scheduler-assigned id (registration order).
func (t *Thread) ID() int { return t.id }

// Clock returns the thread's private virtual clock.
func (t *Thread) Clock() *Clock { return t.clk }

// Yield hands control back to the scheduler. The calling thread blocks
// until it is again the runnable thread with the lowest (time, id).
func (t *Thread) Yield() {
	t.paused <- struct{}{}
	<-t.resume
}

// NewScheduler creates a scheduler over the group's clocks: thread i of
// the schedule owns g.Clock(i). Register exactly g.N() bodies with Spawn,
// then call Run.
func NewScheduler(g *ThreadGroup) *Scheduler {
	return &Scheduler{g: g}
}

// Spawn registers the next thread body; ids are assigned in call order.
func (s *Scheduler) Spawn(body func(*Thread) error) *Thread {
	id := len(s.threads)
	t := &Thread{
		id:     id,
		clk:    s.g.Clock(id),
		body:   body,
		resume: make(chan struct{}),
		paused: make(chan struct{}),
	}
	s.threads = append(s.threads, t)
	return t
}

// Run drives every registered thread to completion and returns the
// lowest-id thread's error, if any. Each body runs on its own goroutine but
// only between a resume handoff and its next Yield (or return), so the
// channel synchronization serializes all bodies: no locks are needed on the
// simulated shared state they touch.
func (s *Scheduler) Run() error {
	if s.running {
		return fmt.Errorf("sim: Scheduler.Run reentered")
	}
	if len(s.threads) != s.g.N() {
		return fmt.Errorf("sim: %d threads spawned for a group of %d", len(s.threads), s.g.N())
	}
	s.running = true
	defer func() { s.running = false }()
	for _, t := range s.threads {
		go func(t *Thread) {
			<-t.resume
			defer func() {
				if r := recover(); r != nil {
					t.err = fmt.Errorf("sim: thread %d panicked: %v", t.id, r)
				}
				t.done = true
				t.paused <- struct{}{}
			}()
			t.err = t.body(t)
		}(t)
	}
	for {
		pick := s.next()
		if pick == nil {
			break
		}
		pick.resume <- struct{}{}
		<-pick.paused
	}
	for _, t := range s.threads {
		if t.err != nil {
			return t.err
		}
	}
	return nil
}

// next selects the runnable thread with the lowest (clock, id); the strict
// < over an id-ordered scan makes the tie-break rule explicit.
func (s *Scheduler) next() *Thread {
	var pick *Thread
	for _, t := range s.threads {
		if t.done {
			continue
		}
		if pick == nil || t.clk.Now() < pick.clk.Now() {
			pick = t
		}
	}
	return pick
}
