package sim

// ThreadGroup models a set of simulated threads executing concurrently.
// Each thread owns a private Clock; the group's elapsed time is the maximum
// across members, mirroring a fork-join region. Shared-resource contention
// (network bandwidth) is charged separately by netmodel.Bandwidth, which all
// member threads share.
type ThreadGroup struct {
	start  Time
	clocks []*Clock
}

// NewThreadGroup creates n simulated threads all starting at instant start.
func NewThreadGroup(n int, start Time) *ThreadGroup {
	g := &ThreadGroup{start: start}
	g.clocks = make([]*Clock, n)
	for i := range g.clocks {
		g.clocks[i] = NewClock(start)
	}
	return g
}

// N reports the number of threads in the group.
func (g *ThreadGroup) N() int { return len(g.clocks) }

// Clock returns the clock of thread i.
func (g *ThreadGroup) Clock(i int) *Clock { return g.clocks[i] }

// Join returns the instant at which the slowest thread finishes. This is
// the group's fork-join completion time.
func (g *ThreadGroup) Join() Time {
	end := g.start
	for _, c := range g.clocks {
		if c.Now() > end {
			end = c.Now()
		}
	}
	return end
}

// Elapsed returns the wall duration of the fork-join region.
func (g *ThreadGroup) Elapsed() Duration { return g.Join().Sub(g.start) }
