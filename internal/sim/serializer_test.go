package sim

import "testing"

func TestSerializerExclusion(t *testing.T) {
	var s Serializer
	// First acquisition at t=100 holds for 50.
	if got := s.Acquire(100, 50); got != 100 {
		t.Fatalf("first acquire at %d, want 100", got)
	}
	// Second request at t=120 must wait until 150.
	if got := s.Acquire(120, 10); got != 150 {
		t.Fatalf("contended acquire at %d, want 150", got)
	}
	// A request after the resource frees proceeds immediately.
	if got := s.Acquire(500, 10); got != 500 {
		t.Fatalf("idle acquire at %d, want 500", got)
	}
	acquires, waited := s.Stats()
	if acquires != 3 {
		t.Fatalf("acquires = %d", acquires)
	}
	if waited != 30 {
		t.Fatalf("waited = %v, want 30", waited)
	}
	s.Reset()
	if a, w := s.Stats(); a != 0 || w != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSerializerConcurrentSafety(t *testing.T) {
	var s Serializer
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 500; j++ {
				s.Acquire(0, 1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if a, _ := s.Stats(); a != 4000 {
		t.Fatalf("acquires = %d, want 4000", a)
	}
}
