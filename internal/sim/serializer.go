package sim

import "sync"

// Serializer models a mutually-exclusive resource shared by simulated
// threads — the global kernel swap lock whose contention limits FastSwap's
// multithreaded scaling (§6.2: "FastSwap's limited scalability is related
// to its Linux-based swap system, which has various synchronization and
// locking bottlenecks").
type Serializer struct {
	mu       sync.Mutex
	nextFree Time
	acquires int64
	waited   Duration
}

// Acquire takes the resource at the earliest instant >= now, holds it for
// hold, and returns the acquisition instant (the caller advances its clock
// to it).
func (s *Serializer) Acquire(now Time, hold Duration) Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := now
	if s.nextFree > start {
		s.waited += s.nextFree.Sub(start)
		start = s.nextFree
	}
	s.nextFree = start.Add(hold)
	s.acquires++
	return start
}

// Stats reports acquisitions and cumulative wait time.
func (s *Serializer) Stats() (acquires int64, waited Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acquires, s.waited
}

// Reset clears the serializer between runs.
func (s *Serializer) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextFree = 0
	s.acquires = 0
	s.waited = 0
}
