package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	// A broken xorshift seeded with state 0 returns 0 forever.
	allZero := true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced a stuck-at-zero stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGInt63NonNegative(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

// Property: Perm always returns a permutation of [0,n).
func TestRNGPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGShufflePreservesElements(t *testing.T) {
	r := NewRNG(3)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d, want %d", got, sum)
	}
}

func TestRNGUniformityRough(t *testing.T) {
	// Coarse uniformity check: 10 buckets, 100k draws, each bucket
	// within 20% of expectation.
	r := NewRNG(1234)
	const draws = 100000
	buckets := make([]int, 10)
	for i := 0; i < draws; i++ {
		buckets[r.Intn(10)]++
	}
	want := draws / 10
	for i, b := range buckets {
		if b < want*8/10 || b > want*12/10 {
			t.Fatalf("bucket %d has %d draws, expected ~%d", i, b, want)
		}
	}
}
