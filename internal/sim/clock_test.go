package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(5 * Microsecond)
	if c.Now() != Time(5*Microsecond) {
		t.Fatalf("after advance: %d, want %d", c.Now(), 5*Microsecond)
	}
	c.Advance(0)
	if c.Now() != Time(5*Microsecond) {
		t.Fatalf("zero advance moved clock to %d", c.Now())
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock(0).Advance(-1)
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock(100)
	if got := c.AdvanceTo(50); got != 0 {
		t.Fatalf("AdvanceTo past instant waited %d, want 0", got)
	}
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo past instant moved clock to %d", c.Now())
	}
	if got := c.AdvanceTo(250); got != 150 {
		t.Fatalf("AdvanceTo waited %d, want 150", got)
	}
	if c.Now() != 250 {
		t.Fatalf("clock at %d, want 250", c.Now())
	}
}

func TestClockReset(t *testing.T) {
	c := NewClock(0)
	c.Advance(Second)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("after reset clock at %d", c.Now())
	}
}

// Property: advancing by a sequence of non-negative durations always lands
// at their sum, regardless of order.
func TestClockAdvanceSumProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock(0)
		var sum Time
		for _, s := range steps {
			c.Advance(Duration(s))
			sum += Time(s)
		}
		return c.Now() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.500us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tc.d), got, tc.want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
	if got := (3 * Microsecond).Micros(); got != 3.0 {
		t.Errorf("Micros() = %v, want 3", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(1000)
	t1 := t0.Add(500)
	if t1 != 1500 {
		t.Fatalf("Add: %d, want 1500", t1)
	}
	if d := t1.Sub(t0); d != 500 {
		t.Fatalf("Sub: %d, want 500", d)
	}
}

func TestThreadGroupJoin(t *testing.T) {
	g := NewThreadGroup(3, 100)
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	g.Clock(0).Advance(10)
	g.Clock(1).Advance(500)
	g.Clock(2).Advance(50)
	if got := g.Join(); got != 600 {
		t.Fatalf("Join = %d, want 600", got)
	}
	if got := g.Elapsed(); got != 500 {
		t.Fatalf("Elapsed = %d, want 500", got)
	}
}

func TestThreadGroupEmptyishElapsed(t *testing.T) {
	g := NewThreadGroup(1, 0)
	if g.Elapsed() != 0 {
		t.Fatalf("fresh group elapsed %d, want 0", g.Elapsed())
	}
}
