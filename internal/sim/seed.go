package sim

// SplitSeed derives a subsystem seed from one root seed and a label — the
// arrival generator, each tenant's fault schedule, and placement jitter all
// draw from one -seed flag without colliding or correlating. The label is
// folded with an FNV-1a hash and the pair is finished with two SplitMix64
// steps (full avalanche), so "faults/0" and "faults/1" are as uncorrelated
// as two unrelated roots. Same (root, label), same seed, on every platform.
func SplitSeed(root uint64, label string) uint64 {
	// FNV-1a over the label bytes.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	z := root ^ h
	for i := 0; i < 2; i++ {
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}
