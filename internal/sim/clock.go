// Package sim provides the virtual-time substrate used by every Mira
// component. All latencies in the system are charged against a Clock rather
// than the wall clock, which makes every experiment deterministic and lets
// the benchmark harness reproduce the paper's figures byte-for-byte across
// runs.
//
// A Clock belongs to one simulated thread of execution. Multi-threaded
// simulations create one Clock per simulated thread (see ThreadGroup) and
// combine them with max() plus shared-resource contention charged by the
// network model.
package sim

import "fmt"

// Duration is a span of virtual time in nanoseconds. We deliberately do not
// reuse time.Duration: values here are simulated and must never be mixed
// with wall-clock durations.
type Duration int64

// Common unit multipliers for Duration.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Time is an instant of virtual time in nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between two instants.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Clock tracks the current virtual time of one simulated thread. The zero
// value is a clock at time 0, ready to use. Clock is not safe for concurrent
// use; each simulated thread owns its clock exclusively.
type Clock struct {
	now Time
}

// NewClock returns a clock starting at the given instant.
func NewClock(start Time) *Clock { return &Clock{now: start} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative durations are a programming
// error and panic: virtual time never flows backwards.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %d", d))
	}
	c.now += Time(d)
}

// AdvanceTo moves the clock forward to instant t if t is in the future;
// otherwise it is a no-op. It returns the duration actually waited. This is
// the primitive used to model blocking on an asynchronous completion (e.g. a
// prefetch that is still in flight).
func (c *Clock) AdvanceTo(t Time) Duration {
	if t <= c.now {
		return 0
	}
	d := Duration(t - c.now)
	c.now = t
	return d
}

// Reset rewinds the clock to time 0. Only the test and benchmark harnesses
// use this, between independent runs.
func (c *Clock) Reset() { c.now = 0 }
