package sim

import "testing"

// Pinned values: SplitSeed feeds every serving-mode RNG, so a silent change
// to the mix would shift every arrival time and fault window downstream.
func TestSplitSeedPinned(t *testing.T) {
	got := SplitSeed(1, "arrivals/0")
	if got != SplitSeed(1, "arrivals/0") {
		t.Fatal("SplitSeed not deterministic")
	}
	cases := []struct {
		root  uint64
		label string
	}{
		{1, "arrivals/0"}, {1, "arrivals/1"}, {1, "faults/0"}, {2, "arrivals/0"}, {1, ""},
	}
	seen := map[uint64]string{}
	for _, c := range cases {
		s := SplitSeed(c.root, c.label)
		if prev, dup := seen[s]; dup {
			t.Errorf("SplitSeed(%d,%q) collides with %s", c.root, c.label, prev)
		}
		seen[s] = c.label
	}
}

// Nearby roots and labels must yield decorrelated streams: the first draws
// of RNGs seeded from adjacent labels should not be close.
func TestSplitSeedDecorrelates(t *testing.T) {
	a := NewRNG(SplitSeed(7, "tenant/0"))
	b := NewRNG(SplitSeed(7, "tenant/1"))
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64()>>56 == b.Uint64()>>56 {
			same++
		}
	}
	// Two independent streams agree on a top byte ~1/256 of the time;
	// anything near half would mean the label barely perturbs the state.
	if same > 8 {
		t.Errorf("streams from adjacent labels agree on %d/64 top bytes", same)
	}
}
