package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64-seeded xorshift*), used by workload generators and by the
// approximate-LRU sampling paths. We avoid math/rand so that the stream is
// stable across Go releases: the paper's figures must regenerate
// identically.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64 so that nearby
// seeds yield uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-seeds the generator.
func (r *RNG) Seed(seed uint64) {
	// One SplitMix64 step to avoid the all-zeros fixed point and to
	// decorrelate small seeds.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
