// Package plane defines the one data-plane contract both of Mira's far-memory
// mechanisms implement: the kernel-paging plane (internal/swap, 4 KiB pages)
// and the runtime line plane (internal/rt sections over internal/cache). A
// DataPlane caches some unit of far memory locally, charges every move to the
// simulated clock, and can always be flushed back to a consistent far image —
// which is what makes mid-run migration between planes possible: drain one
// plane's dirty state through the transport, then re-register the address
// range on the other.
//
// The contract is deliberately address-based (far addresses, not object
// names) so a conformance suite (planetest) can drive both implementations
// through one script and compare behavior.
package plane

import (
	"mira/internal/sim"
	"mira/internal/trace"
)

// Kind names a data-plane mechanism.
type Kind uint8

const (
	// Page is the kernel-paging plane: 4 KiB pages, an LRU pool, faults
	// priced like FastSwap. Cheap for dense streaming (no per-access
	// software overhead beyond the fault), wasteful for sparse access
	// (full-page amplification).
	Page Kind = iota
	// Line is the runtime cache-section plane: program-sized lines,
	// software lookup on every access, write-back queues. Cheap for
	// sparse and pointer-chasing access, slower per byte for streams.
	Line
)

func (k Kind) String() string {
	switch k {
	case Page:
		return "page"
	case Line:
		return "line"
	default:
		return "unknown"
	}
}

// Stats is the normalized counter set both planes report. Implementations
// map their native counters onto it (the swap plane's major faults become
// Misses, a section's cache hits stay Hits), so cross-plane dashboards and
// the conformance suite can compare mechanisms without knowing which one
// they are looking at.
type Stats struct {
	Accesses       int64
	Hits           int64
	Misses         int64
	Evictions      int64
	Writebacks     int64
	PrefetchIssued int64
	PrefetchUseful int64
}

// DataPlane is the single contract over both far-memory mechanisms. All
// methods charge simulated time to clk; none touch wall-clock state, so a
// fixed call script is byte-identical across replays.
type DataPlane interface {
	// Kind names the mechanism.
	Kind() Kind
	// UnitBytes is the plane's transfer granularity: the page size for the
	// paged plane, the section's line size for the line plane.
	UnitBytes() int
	// CapacityUnits is how many units the plane can hold locally right
	// now (elastic rescales change it for the line plane).
	CapacityUnits() int
	// ResidentUnits is how many units are currently cached locally.
	ResidentUnits() int
	// Access reads (write=false) or writes (write=true) len(buf) bytes at
	// far address far, faulting units in as needed.
	Access(clk *sim.Clock, far uint64, buf []byte, write bool) error
	// PrefetchBatch advises the plane to fetch the units containing the
	// given far addresses. Purely advisory: out-of-range, resident, and
	// in-flight proposals are dropped (and counted), never errors.
	PrefetchBatch(clk *sim.Clock, fars []uint64) error
	// Evict writes back and drops every unit overlapping [far, far+length),
	// blocking clk until the dirty bytes are in far memory. This is the
	// migration drain: after Evict the range's authoritative bytes live in
	// far memory and the other plane may register it.
	Evict(clk *sim.Clock, far uint64, length int64) error
	// Fence blocks clk until every in-flight speculative fetch and
	// asynchronous write-back has landed.
	Fence(clk *sim.Clock)
	// Flush writes back and drops everything resident.
	Flush(clk *sim.Clock) error
	// Stats reports the plane's normalized counters.
	Stats() Stats
	// SetTrace attaches a tracer for the plane's spans and counters.
	SetTrace(tr *trace.Tracer)
}
