// Package planetest is the shared conformance suite for plane.DataPlane
// implementations, mirroring transporttest: implementers construct a Harness
// around their plane and Run drives one behavioral script through it —
// read-your-writes, flush/evict persistence to far memory, advisory
// prefetch, fences, tail-unit handling for unaligned regions, and replay
// determinism. Both the paged plane and the line plane must pass unchanged.
package planetest

import (
	"bytes"
	"testing"

	"mira/internal/plane"
	"mira/internal/sim"
)

// Harness wraps one DataPlane instance over one far region for the suite.
type Harness struct {
	// P is the plane under test.
	P plane.DataPlane
	// Base and Length delimit the far region the plane serves; every
	// suite access stays inside [Base, Base+Length).
	Base   uint64
	Length int64
	// FarRead reads raw far memory behind the plane (bypassing the
	// cache), so the suite can check that flushes actually persisted.
	FarRead func(addr uint64, buf []byte) error
}

// Factory builds a fresh harness; the suite calls it once per subtest so
// state never leaks between behaviors.
type Factory func(t *testing.T) *Harness

// pattern is the deterministic byte the suite expects at a far address.
func pattern(addr uint64) byte { return byte(addr*131 + 17) }

func fill(base uint64, buf []byte) {
	for i := range buf {
		buf[i] = pattern(base + uint64(i))
	}
}

// Run drives the full conformance suite against the factory's planes.
func Run(t *testing.T, name string, mk Factory) {
	t.Run(name, func(t *testing.T) {
		t.Run("ReadYourWrites", func(t *testing.T) { testReadYourWrites(t, mk(t)) })
		t.Run("FlushPersists", func(t *testing.T) { testFlushPersists(t, mk(t)) })
		t.Run("EvictRangePersists", func(t *testing.T) { testEvictRange(t, mk(t)) })
		t.Run("PrefetchAdvisory", func(t *testing.T) { testPrefetchAdvisory(t, mk(t)) })
		t.Run("FenceSettles", func(t *testing.T) { testFenceSettles(t, mk(t)) })
		t.Run("TailUnit", func(t *testing.T) { testTailUnit(t, mk(t)) })
		t.Run("StatsCount", func(t *testing.T) { testStatsCount(t, mk(t)) })
		t.Run("Determinism", func(t *testing.T) { testDeterminism(t, mk) })
	})
}

// span returns an access window of up to want bytes starting at off,
// clipped to the harness region.
func (h *Harness) span(off int64, want int64) (uint64, []byte) {
	if off >= h.Length {
		off = h.Length - 1
	}
	if off < 0 {
		off = 0
	}
	n := want
	if off+n > h.Length {
		n = h.Length - off
	}
	return h.Base + uint64(off), make([]byte, n)
}

func testReadYourWrites(t *testing.T, h *Harness) {
	clk := sim.NewClock(0)
	unit := int64(h.P.UnitBytes())
	// Writes at the region head, spanning a unit boundary, and at the
	// region tail; each must read back through the plane verbatim.
	offs := []int64{0, unit/2 + 1, h.Length - unit/3 - 1}
	for _, off := range offs {
		addr, buf := h.span(off, unit*2+unit/2)
		fill(addr, buf)
		if err := h.P.Access(clk, addr, buf, true); err != nil {
			t.Fatalf("write at %#x: %v", addr, err)
		}
		got := make([]byte, len(buf))
		if err := h.P.Access(clk, addr, got, false); err != nil {
			t.Fatalf("read at %#x: %v", addr, err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("read-your-writes mismatch at offset %d", off)
		}
	}
}

func testFlushPersists(t *testing.T, h *Harness) {
	clk := sim.NewClock(0)
	addr, buf := h.span(int64(h.P.UnitBytes())/2, int64(h.P.UnitBytes())*3)
	fill(addr, buf)
	if err := h.P.Access(clk, addr, buf, true); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := h.P.Flush(clk); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if got := h.P.ResidentUnits(); got != 0 {
		t.Fatalf("flush left %d units resident", got)
	}
	far := make([]byte, len(buf))
	if err := h.FarRead(addr, far); err != nil {
		t.Fatalf("far read: %v", err)
	}
	if !bytes.Equal(far, buf) {
		t.Fatalf("flush did not persist dirty bytes to far memory")
	}
}

func testEvictRange(t *testing.T, h *Harness) {
	clk := sim.NewClock(0)
	unit := int64(h.P.UnitBytes())
	addr, buf := h.span(0, unit*2)
	fill(addr, buf)
	if err := h.P.Access(clk, addr, buf, true); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := h.P.Evict(clk, addr, int64(len(buf))); err != nil {
		t.Fatalf("evict: %v", err)
	}
	far := make([]byte, len(buf))
	if err := h.FarRead(addr, far); err != nil {
		t.Fatalf("far read: %v", err)
	}
	if !bytes.Equal(far, buf) {
		t.Fatalf("evict did not write dirty range back to far memory")
	}
	// A refetch through the plane still sees the bytes.
	got := make([]byte, len(buf))
	if err := h.P.Access(clk, addr, got, false); err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatalf("refetch after evict lost data")
	}
	// Evicting a range with nothing resident is a no-op, not an error.
	if err := h.P.Evict(clk, addr, 0); err != nil {
		t.Fatalf("zero-length evict: %v", err)
	}
}

func testPrefetchAdvisory(t *testing.T, h *Harness) {
	clk := sim.NewClock(0)
	unit := int64(h.P.UnitBytes())
	// Seed far memory through the plane so prefetched units carry known bytes.
	addr, buf := h.span(0, unit*2)
	fill(addr, buf)
	if err := h.P.Access(clk, addr, buf, true); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	if err := h.P.Flush(clk); err != nil {
		t.Fatalf("seed flush: %v", err)
	}
	// In-range, duplicate, and wildly out-of-range proposals: all advisory.
	props := []uint64{addr, addr + uint64(unit), addr, h.Base + uint64(h.Length) + uint64(unit)*10}
	if err := h.P.PrefetchBatch(clk, props); err != nil {
		t.Fatalf("prefetch batch: %v", err)
	}
	h.P.Fence(clk)
	got := make([]byte, len(buf))
	if err := h.P.Access(clk, addr, got, false); err != nil {
		t.Fatalf("read after prefetch: %v", err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatalf("prefetched bytes differ from far image")
	}
	if st := h.P.Stats(); st.PrefetchIssued == 0 {
		t.Fatalf("prefetch batch issued nothing: %+v", st)
	}
}

func testFenceSettles(t *testing.T, h *Harness) {
	clk := sim.NewClock(0)
	addr, buf := h.span(0, int64(h.P.UnitBytes()))
	fill(addr, buf)
	if err := h.P.Access(clk, addr, buf, true); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := h.P.PrefetchBatch(clk, []uint64{h.Base + uint64(h.P.UnitBytes())}); err != nil {
		t.Fatalf("prefetch: %v", err)
	}
	h.P.Fence(clk)
	settled := clk.Now()
	h.P.Fence(clk)
	if clk.Now() != settled {
		t.Fatalf("second fence moved the clock: %v -> %v", settled, clk.Now())
	}
}

func testTailUnit(t *testing.T, h *Harness) {
	if h.Length%int64(h.P.UnitBytes()) == 0 {
		t.Skip("region length is unit-aligned; tail behavior not exercised")
	}
	clk := sim.NewClock(0)
	tail := h.Length % int64(h.P.UnitBytes())
	addr, buf := h.span(h.Length-tail, tail)
	fill(addr, buf)
	if err := h.P.Access(clk, addr, buf, true); err != nil {
		t.Fatalf("tail write: %v", err)
	}
	if err := h.P.Flush(clk); err != nil {
		t.Fatalf("flush: %v", err)
	}
	far := make([]byte, len(buf))
	if err := h.FarRead(addr, far); err != nil {
		t.Fatalf("far read: %v", err)
	}
	if !bytes.Equal(far, buf) {
		t.Fatalf("tail unit did not persist")
	}
}

func testStatsCount(t *testing.T, h *Harness) {
	clk := sim.NewClock(0)
	unit := int64(h.P.UnitBytes())
	addr, buf := h.span(0, unit*2)
	before := h.P.Stats()
	if err := h.P.Access(clk, addr, buf, false); err != nil {
		t.Fatalf("cold read: %v", err)
	}
	mid := h.P.Stats()
	if mid.Misses <= before.Misses {
		t.Fatalf("cold read did not miss: %+v", mid)
	}
	if mid.Accesses <= before.Accesses {
		t.Fatalf("cold read not counted as access: %+v", mid)
	}
	if err := h.P.Access(clk, addr, buf, false); err != nil {
		t.Fatalf("warm read: %v", err)
	}
	after := h.P.Stats()
	if after.Misses != mid.Misses {
		t.Fatalf("warm re-read missed: %+v -> %+v", mid, after)
	}
	if after.Accesses <= mid.Accesses {
		t.Fatalf("warm re-read not counted as access: %+v", after)
	}
	if after.Hits < mid.Hits {
		t.Fatalf("hit counter went backwards: %+v -> %+v", mid, after)
	}
	if h.P.ResidentUnits() <= 0 || h.P.ResidentUnits() > h.P.CapacityUnits() {
		t.Fatalf("resident %d outside (0, capacity %d]", h.P.ResidentUnits(), h.P.CapacityUnits())
	}
}

// testDeterminism runs one mixed script against two fresh harnesses and
// requires identical elapsed simulated time, identical stats, and identical
// read-back bytes — the property migration replay relies on.
func testDeterminism(t *testing.T, mk Factory) {
	run := func(h *Harness) (sim.Time, plane.Stats, []byte) {
		clk := sim.NewClock(0)
		unit := int64(h.P.UnitBytes())
		for i := int64(0); i < 4; i++ {
			addr, buf := h.span(i*unit/2, unit)
			fill(addr, buf)
			if err := h.P.Access(clk, addr, buf, true); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		if err := h.P.PrefetchBatch(clk, []uint64{h.Base, h.Base + uint64(unit)}); err != nil {
			t.Fatalf("prefetch: %v", err)
		}
		h.P.Fence(clk)
		addr, got := h.span(0, unit*2)
		if err := h.P.Access(clk, addr, got, false); err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := h.P.Flush(clk); err != nil {
			t.Fatalf("flush: %v", err)
		}
		far := make([]byte, len(got))
		if err := h.FarRead(addr, far); err != nil {
			t.Fatalf("far read: %v", err)
		}
		return clk.Now(), h.P.Stats(), far
	}
	t1, s1, b1 := run(mk(t))
	t2, s2, b2 := run(mk(t))
	if t1 != t2 {
		t.Fatalf("elapsed time diverged across identical runs: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("stats diverged across identical runs:\n%+v\n%+v", s1, s2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("far image diverged across identical runs")
	}
}
