package rt

import (
	"fmt"
	"sort"

	"mira/internal/sim"
	"mira/internal/trace"
)

// DefaultWritebackQueueLines is the per-section write-back queue bound used
// when Config.WritebackQueueLines is zero.
const DefaultWritebackQueueLines = 16

// writebackQueue is the per-section asynchronous eviction pipeline: dirty
// victims park here instead of paying their write latency on the miss path,
// and the queue drains in background simulated time as coalesced vectored
// writes (adjacent lines merge into one contiguous piece, pieces share one
// doorbell-batched message). The queue is a read-your-writes overlay over
// far memory — the miss path consults it before fetching, so a line evicted
// and re-touched before its write-back drained is recovered locally.
type writebackQueue struct {
	limit   int
	entries map[uint64]wbqEntry
	tags    []uint64 // sorted mirror of entries' keys
}

type wbqEntry struct {
	data []byte
	o    *objectRT // owning object (selective write-back resolution)
}

func newWritebackQueue(limit int) *writebackQueue {
	if limit <= 0 {
		return nil
	}
	return &writebackQueue{limit: limit, entries: make(map[uint64]wbqEntry)}
}

// add parks one dirty line, latest write wins. Reports whether the queue is
// now over its bound and must drain.
func (q *writebackQueue) add(tag uint64, data []byte, o *objectRT) (mustDrain bool) {
	cp := make([]byte, len(data))
	copy(cp, data)
	if _, exists := q.entries[tag]; !exists {
		i := sort.Search(len(q.tags), func(i int) bool { return q.tags[i] >= tag })
		q.tags = append(q.tags, 0)
		copy(q.tags[i+1:], q.tags[i:])
		q.tags[i] = tag
	}
	q.entries[tag] = wbqEntry{data: cp, o: o}
	return len(q.tags) >= q.limit
}

// take removes and returns the queued line for tag — the read-your-writes
// path. The caller owns the returned buffer.
func (q *writebackQueue) take(tag uint64) ([]byte, *objectRT, bool) {
	e, ok := q.entries[tag]
	if !ok {
		return nil, nil, false
	}
	delete(q.entries, tag)
	i := sort.Search(len(q.tags), func(i int) bool { return q.tags[i] >= tag })
	if i < len(q.tags) && q.tags[i] == tag {
		q.tags = append(q.tags[:i], q.tags[i+1:]...)
	}
	return e.data, e.o, true
}

func (q *writebackQueue) len() int { return len(q.tags) }

// WbqStats counts the write-back pipeline's activity.
type WbqStats struct {
	Enqueued int64 // dirty victims parked in a queue
	Hits     int64 // misses served from a queue (read-your-writes)
	Drains   int64 // vectored drain messages issued
	Lines    int64 // lines drained
	Pieces   int64 // coalesced pieces those lines collapsed into
}

// WritebackQueueStats reports the runtime-wide write-back queue counters.
func (r *Runtime) WritebackQueueStats() WbqStats { return r.wbqStats }

// wbqEnqueue parks a dirty victim in the section's queue, draining it when
// the bound is hit — the only time an evicting access pays write-back
// latency. With the queue disabled it falls back to issuing the write
// immediately (the pre-pipeline behavior).
func (r *Runtime) wbqEnqueue(clk *sim.Clock, s *sectionRT, o *objectRT, tag uint64, data []byte) error {
	if s.wbq == nil {
		done, err := r.writebackLine(clk.Now(), o, tag, data)
		if err != nil {
			return err
		}
		if done > r.lastFlush {
			r.lastFlush = done
		}
		return nil
	}
	if owner := r.ownerOf(tag); owner != nil {
		o = owner
	}
	r.wbqStats.Enqueued++
	if r.trc != nil {
		r.trc.Instant(clk.Now(), "rt", "wbq.park", trace.S("section", s.spec.Cache.Name))
	}
	if s.wbq.add(tag, data, o) {
		_, err := r.drainWbq(clk, s)
		return err
	}
	return nil
}

// drainWbq flushes the section's write-back queue as one doorbell-batched
// vectored write, coalescing adjacent lines into contiguous pieces. The
// issuing thread pays the posting cost; completion lands in lastFlush (the
// Fence horizon) and is returned so flush paths can block on it.
func (r *Runtime) drainWbq(clk *sim.Clock, s *sectionRT) (sim.Time, error) {
	if s.wbq == nil || s.wbq.len() == 0 {
		return clk.Now(), nil
	}
	tags := append([]uint64(nil), s.wbq.tags...)
	var addrs []uint64
	var pieces [][]byte
	type taken struct {
		tag  uint64
		data []byte
		o    *objectRT
	}
	var drained []taken
	for _, tag := range tags {
		data, o, ok := s.wbq.take(tag)
		if !ok {
			continue
		}
		drained = append(drained, taken{tag, data, o})
		if o != nil && len(o.selFields) > 0 {
			sa, sz, offs := r.selectivePieces(o, tag, len(data))
			for i := range sa {
				addrs = append(addrs, sa[i])
				pieces = append(pieces, data[offs[i]:offs[i]+sz[i]])
			}
			continue
		}
		// Adjacent whole lines merge into one contiguous piece (one WR).
		if n := len(addrs); n > 0 && addrs[n-1]+uint64(len(pieces[n-1])) == tag {
			pieces[n-1] = append(pieces[n-1], data...)
			continue
		}
		addrs = append(addrs, tag)
		pieces = append(pieces, data)
	}
	if len(addrs) == 0 {
		return clk.Now(), nil
	}
	clk.Advance(r.cfg.Net.VectoredPostCost(len(addrs)))
	post := clk.Now()
	done, err := r.tr.ScatterWrite(post, addrs, pieces)
	if err != nil {
		// Re-park everything: the queued copies are the only copies.
		for _, d := range drained {
			s.wbq.add(d.tag, d.data, d.o)
		}
		return clk.Now(), fmt.Errorf("rt: write-back drain: %w", err)
	}
	r.wbqStats.Drains++
	r.wbqStats.Lines += int64(len(drained))
	r.wbqStats.Pieces += int64(len(addrs))
	if r.trc != nil {
		r.trc.Span(post, done, "rt", "wbq.drain",
			trace.I("lines", int64(len(drained))), trace.I("pieces", int64(len(addrs))))
	}
	if done > r.lastFlush {
		r.lastFlush = done
	}
	return done, nil
}

// drainAllWbq drains every section's queue (program-end flush ordering:
// queued lines must reach far memory before the transport-level overlay is
// flushed and DumpObject bypasses the cache).
func (r *Runtime) drainAllWbq(clk *sim.Clock) (sim.Time, error) {
	last := clk.Now()
	for _, s := range r.secs {
		done, err := r.drainWbq(clk, s)
		if err != nil {
			return last, err
		}
		if done > last {
			last = done
		}
	}
	return last, nil
}
