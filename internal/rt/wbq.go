package rt

import (
	"fmt"
	"sort"

	"mira/internal/codec"
	"mira/internal/sim"
	"mira/internal/trace"
)

// DefaultWritebackQueueLines is the per-section write-back queue bound used
// when Config.WritebackQueueLines is zero.
const DefaultWritebackQueueLines = 16

// writebackQueue is the per-section asynchronous eviction pipeline: dirty
// victims park here instead of paying their write latency on the miss path,
// and the queue drains in background simulated time as coalesced vectored
// writes (adjacent lines merge into one contiguous piece, pieces share one
// doorbell-batched message). The queue is a read-your-writes overlay over
// far memory — the miss path consults it before fetching, so a line evicted
// and re-touched before its write-back drained is recovered locally.
type writebackQueue struct {
	limit   int
	entries map[uint64]wbqEntry
	tags    []uint64 // sorted mirror of entries' keys
}

type wbqEntry struct {
	data []byte
	o    *objectRT // owning object (selective write-back resolution)
	// ranges, when non-nil, restricts the drain to the line's changed
	// byte ranges (delta write-back): only data[r.Off:r.Off+r.Len] pieces
	// ship. data always holds the FULL line regardless, so the
	// read-your-writes take path recovers complete bytes.
	ranges []codec.Range
}

func newWritebackQueue(limit int) *writebackQueue {
	if limit <= 0 {
		return nil
	}
	return &writebackQueue{limit: limit, entries: make(map[uint64]wbqEntry)}
}

// add parks one dirty line, latest write wins. ranges nil means a full-line
// write-back; non-nil restricts the drain to the changed ranges. Reports
// whether the queue is now over its bound and must drain.
func (q *writebackQueue) add(tag uint64, data []byte, o *objectRT, ranges []codec.Range) (mustDrain bool) {
	cp := make([]byte, len(data))
	copy(cp, data)
	if _, exists := q.entries[tag]; !exists {
		i := sort.Search(len(q.tags), func(i int) bool { return q.tags[i] >= tag })
		q.tags = append(q.tags, 0)
		copy(q.tags[i+1:], q.tags[i:])
		q.tags[i] = tag
	}
	q.entries[tag] = wbqEntry{data: cp, o: o, ranges: ranges}
	return len(q.tags) >= q.limit
}

// take removes and returns the queued line for tag — the read-your-writes
// path. The caller owns the returned buffer, which is always the full line
// even when the entry carried a delta plan.
func (q *writebackQueue) take(tag uint64) (wbqEntry, bool) {
	e, ok := q.entries[tag]
	if !ok {
		return wbqEntry{}, false
	}
	delete(q.entries, tag)
	i := sort.Search(len(q.tags), func(i int) bool { return q.tags[i] >= tag })
	if i < len(q.tags) && q.tags[i] == tag {
		q.tags = append(q.tags[:i], q.tags[i+1:]...)
	}
	return e, true
}

func (q *writebackQueue) len() int { return len(q.tags) }

// WbqStats counts the write-back pipeline's activity.
type WbqStats struct {
	Enqueued int64 // dirty victims parked in a queue
	Hits     int64 // misses served from a queue (read-your-writes)
	Drains   int64 // vectored drain messages issued
	Lines    int64 // lines drained
	Pieces   int64 // coalesced pieces those lines collapsed into
	// Delta write-back counters (compressed sections only).
	DeltaSkipped int64 // dirty lines identical to their snapshot: no write at all
	DeltaLines   int64 // dirty lines shipped as changed-range patches
	DeltaSaved   int64 // full-line bytes the patches kept off the write path
}

// deltaJoinGap merges changed ranges separated by fewer than this many
// unchanged bytes: each merge trades re-shipped gap bytes for one scatter
// element.
const deltaJoinGap = 8

// maxDeltaPieces bounds a patch's scatter elements. Every piece pays the
// vectored posting and per-piece chunking overheads, so a line shattered
// into many small ranges (a scan touching one field per element, say) costs
// more to patch than to re-ship whole. deltaPlan widens the join gap until
// the patch fits the bound, trading re-shipped gap bytes for pieces, and
// gives up on delta entirely when even that doesn't converge or no longer
// saves real bytes.
const maxDeltaPieces = 8

// deltaPlan consumes the section's last-fetched snapshot of tag and plans
// the dirty line's write-back. ranges nil = ship the full line; skip = the
// bytes never actually changed, no write needed. The diff pass is charged
// to the evicting thread as one codec encode over the line.
func (r *Runtime) deltaPlan(clk *sim.Clock, s *sectionRT, o *objectRT, tag uint64, data []byte) (ranges []codec.Range, skip bool) {
	if s.snaps == nil {
		return nil, false
	}
	snap, ok := s.snaps[tag]
	if !ok {
		// NoFetch allocation or degraded write-allocate: no base to diff
		// against — the full line is the only safe write.
		return nil, false
	}
	delete(s.snaps, tag)
	if (o != nil && len(o.selFields) > 0) || len(snap) != len(data) {
		return nil, false
	}
	// Degraded mode: the write will park in the transport's overlay against
	// a far node whose memory may have been crash-wiped. A full line
	// restores it; a patch would assume surviving base bytes.
	if r.tr.BreakerOpen(clk.Now()) {
		return nil, false
	}
	clk.Advance(codec.DefaultCostModel().EncodeCost(len(data)))
	rs := codec.DiffRanges(snap, data, deltaJoinGap)
	if len(rs) == 0 {
		r.wbqStats.DeltaSkipped++
		return nil, true
	}
	for gap := deltaJoinGap * 4; len(rs) > maxDeltaPieces && gap <= len(data); gap *= 4 {
		rs = codec.DiffRanges(snap, data, gap)
	}
	if len(rs) > maxDeltaPieces {
		return nil, false
	}
	patch := 0
	for _, rg := range rs {
		patch += rg.Len
	}
	// A patch must save a solid majority of the line: each piece still pays
	// its posting and chunking overheads, and a near-full patch loses the
	// adjacency coalescing whole lines get in the drain.
	if patch*4 > len(data)*3 {
		return nil, false
	}
	r.wbqStats.DeltaLines++
	r.wbqStats.DeltaSaved += int64(len(data) - patch)
	return rs, false
}

// WritebackQueueStats reports the runtime-wide write-back queue counters.
func (r *Runtime) WritebackQueueStats() WbqStats { return r.wbqStats }

// wbqEnqueue parks a dirty victim in the section's queue, draining it when
// the bound is hit — the only time an evicting access pays write-back
// latency. With the queue disabled it falls back to issuing the write
// immediately (the pre-pipeline behavior).
func (r *Runtime) wbqEnqueue(clk *sim.Clock, s *sectionRT, o *objectRT, tag uint64, data []byte) error {
	if owner := r.ownerOf(tag); owner != nil {
		o = owner
	}
	ranges, skip := r.deltaPlan(clk, s, o, tag, data)
	if skip {
		return nil // dirty flag lied: the bytes match far memory exactly
	}
	if s.wbq == nil {
		var done sim.Time
		var err error
		if ranges != nil {
			done, err = r.writebackPatch(clk.Now(), s, tag, data, ranges)
		} else {
			done, err = r.writebackLine(clk.Now(), o, tag, data)
		}
		if err != nil {
			return err
		}
		if done > r.lastFlush {
			r.lastFlush = done
		}
		return nil
	}
	r.wbqStats.Enqueued++
	if r.trc != nil {
		r.trc.Instant(clk.Now(), "rt", "wbq.park", trace.S("section", s.spec.Cache.Name))
	}
	if s.wbq.add(tag, data, o, ranges) {
		_, err := r.drainWbq(clk, s)
		return err
	}
	return nil
}

// drainWbq flushes the section's write-back queue as one doorbell-batched
// vectored write, coalescing adjacent lines into contiguous pieces. The
// issuing thread pays the posting cost; completion lands in lastFlush (the
// Fence horizon) and is returned so flush paths can block on it.
func (r *Runtime) drainWbq(clk *sim.Clock, s *sectionRT) (sim.Time, error) {
	if s.wbq == nil || s.wbq.len() == 0 {
		return clk.Now(), nil
	}
	tags := append([]uint64(nil), s.wbq.tags...)
	var addrs []uint64
	var pieces [][]byte
	type taken struct {
		tag uint64
		e   wbqEntry
	}
	// Entries planned as patches while the link was healthy must re-expand
	// to full lines when the drain lands in degraded mode: the write will
	// park in the transport's overlay against a far node whose memory may
	// have been crash-wiped, and a patch would merge over base bytes that
	// no longer exist. The queue always carries the full line for exactly
	// this reason.
	degraded := r.tr.BreakerOpen(clk.Now())
	var drained []taken
	for _, tag := range tags {
		e, ok := s.wbq.take(tag)
		if !ok {
			continue
		}
		drained = append(drained, taken{tag, e})
		if e.o != nil && len(e.o.selFields) > 0 {
			sa, sz, offs := r.selectivePieces(e.o, tag, len(e.data))
			for i := range sa {
				addrs = append(addrs, sa[i])
				pieces = append(pieces, e.data[offs[i]:offs[i]+sz[i]])
			}
			continue
		}
		if e.ranges != nil && !degraded {
			// Delta write-back: only the changed ranges ship, each as a raw
			// sub-range piece at its own sub-line address.
			for _, rg := range e.ranges {
				addrs = append(addrs, tag+uint64(rg.Off))
				pieces = append(pieces, e.data[rg.Off:rg.Off+rg.Len])
			}
			continue
		}
		// Adjacent whole lines merge into one contiguous piece (one WR).
		if n := len(addrs); n > 0 && addrs[n-1]+uint64(len(pieces[n-1])) == tag {
			pieces[n-1] = append(pieces[n-1], e.data...)
			continue
		}
		addrs = append(addrs, tag)
		pieces = append(pieces, e.data)
	}
	if len(addrs) == 0 {
		return clk.Now(), nil
	}
	clk.Advance(r.cfg.Net.VectoredPostCost(len(addrs)))
	post := clk.Now()
	if s.spec.Compress {
		r.setCodec(codec.ByteRun)
		defer r.setCodec(codec.None)
	}
	done, err := r.tr.ScatterWrite(post, addrs, pieces)
	if err != nil {
		// Re-park everything: the queued copies are the only copies.
		for _, d := range drained {
			s.wbq.add(d.tag, d.e.data, d.e.o, d.e.ranges)
		}
		return clk.Now(), fmt.Errorf("rt: write-back drain: %w", err)
	}
	r.wbqStats.Drains++
	r.wbqStats.Lines += int64(len(drained))
	r.wbqStats.Pieces += int64(len(addrs))
	if r.trc != nil {
		r.trc.Span(post, done, "rt", "wbq.drain",
			trace.I("lines", int64(len(drained))), trace.I("pieces", int64(len(addrs))))
	}
	if done > r.lastFlush {
		r.lastFlush = done
	}
	return done, nil
}

// drainAllWbq drains every section's queue (program-end flush ordering:
// queued lines must reach far memory before the transport-level overlay is
// flushed and DumpObject bypasses the cache).
func (r *Runtime) drainAllWbq(clk *sim.Clock) (sim.Time, error) {
	last := clk.Now()
	for _, s := range r.secs {
		done, err := r.drainWbq(clk, s)
		if err != nil {
			return last, err
		}
		if done > last {
			last = done
		}
	}
	return last, nil
}
