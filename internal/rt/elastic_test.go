package rt

import (
	"bytes"
	"testing"

	"mira/internal/cache"
)

// Shrinking must flush dirty lines first and regrowing must refetch them:
// no data loss across a full lend/reclaim cycle, only a cold cache.
func TestElasticShrinkRegrowPreservesData(t *testing.T) {
	r, clk := mkRuntime(t, func(c *Config) {
		c.WritebackQueueLines = 16
	})
	base := r.SectionLiveBytes()
	if base != 16<<10 {
		t.Fatalf("live bytes = %d, want %d", base, 16<<10)
	}

	// Dirty a few elements, leave them resident (no flush).
	writes := map[int64][]byte{
		0: {1, 2, 3, 4, 5, 6, 7, 8},
		7: {9, 9, 9, 9, 8, 8, 8, 8},
	}
	for e, w := range writes {
		if err := r.Access(clk, "items", e, fld(0, 8), w, true, AccessOpts{}); err != nil {
			t.Fatal(err)
		}
	}

	if err := r.SetSectionScale(clk, 0.25); err != nil {
		t.Fatal(err)
	}
	if got := r.SectionLiveBytes(); got != base/4 {
		t.Fatalf("shrunk live bytes = %d, want %d", got, base/4)
	}
	if r.SectionScale() != 0.25 {
		t.Fatalf("scale = %g", r.SectionScale())
	}
	// The dirty lines must already sit in far memory: DumpObject bypasses
	// the cache entirely.
	dump, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	for e, w := range writes {
		if !bytes.Equal(dump[e*64:e*64+8], w) {
			t.Fatalf("elem %d lost on shrink: %x", e, dump[e*64:e*64+8])
		}
	}

	// Regrow: the cache is cold, so the next access misses and refetches.
	if err := r.SetSectionScale(clk, 1); err != nil {
		t.Fatal(err)
	}
	if got := r.SectionLiveBytes(); got != base {
		t.Fatalf("regrown live bytes = %d, want %d", got, base)
	}
	missesBefore := r.SectionStats(0).Misses
	g := make([]byte, 8)
	if err := r.Access(clk, "items", 0, fld(0, 8), g, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, writes[0]) {
		t.Fatalf("post-regrow read %x, want %x", g, writes[0])
	}
	if r.SectionStats(0).Misses != missesBefore+1 {
		t.Fatal("regrown cache was not cold")
	}
}

// A shrunken section must keep working (capacity pressure, not failure),
// and re-scaling to the current value must be a no-op.
func TestElasticShrunkSectionStillServes(t *testing.T) {
	r, clk := mkRuntime(t, func(c *Config) {
		c.Sections[0].Cache = cache.Config{Name: "items", Structure: cache.Direct, LineBytes: 128, SizeBytes: 1 << 10}
		c.WritebackQueueLines = 16
	})
	if err := r.SetSectionScale(clk, 0.25); err != nil {
		t.Fatal(err)
	}
	for e := int64(0); e < 32; e++ {
		w := []byte{byte(e), 0xaa}
		if err := r.Access(clk, "items", e, fld(0, 2), w, true, AccessOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	for e := int64(0); e < 32; e++ {
		if dump[e*64] != byte(e) || dump[e*64+1] != 0xaa {
			t.Fatalf("elem %d wrong after shrunken-section run: %x", e, dump[e*64:e*64+2])
		}
	}
	now := clk.Now()
	if err := r.SetSectionScale(clk, 0.25); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != now {
		t.Fatal("re-scaling to the current scale charged time")
	}
	if err := r.SetSectionScale(clk, 0); err == nil {
		t.Fatal("scale 0 accepted")
	}
}
