package rt

import (
	"fmt"

	"mira/internal/cache"
	"mira/internal/codec"
	"mira/internal/prefetch"
	"mira/internal/sim"
	"mira/internal/swap"
	"mira/internal/trace"
)

// InstallSectionPolicy attaches an advisory prefetch policy to section
// idx's demand-miss stream (prefetcher zoo, line plane). One policy
// instance per section: sections have disjoint miss streams and stateful
// policies must not mix them. Nil uninstalls. Call after Bind.
func (r *Runtime) InstallSectionPolicy(idx int, p prefetch.Policy) error {
	if idx < 0 || idx >= len(r.secs) {
		return fmt.Errorf("rt: install policy on section %d of %d", idx, len(r.secs))
	}
	r.secs[idx].policy = p
	return nil
}

// policyMiss runs section s's advisory policy on a demand miss of tag:
// filters its proposals (in-section, absent, not in flight) and issues the
// survivors as one speculative doorbell-batched gather. Runs only after
// the demand access fully completed: speculative wire traffic queues
// behind the miss it rides on, and the speculative reservations — which
// may evict any line, including the demand line — can never invalidate an
// in-progress copy.
func (r *Runtime) policyMiss(clk *sim.Clock, s *sectionRT, tag uint64) {
	if s.policy == nil {
		return
	}
	lb := int64(s.spec.Cache.LineBytes)
	r.policyIssue(clk, s, s.policy.OnMiss(int64(tag)/lb))
}

// policyTouch feeds the first demand touch of a speculatively fetched line
// to stream-maintaining policies (prefetch.StreamTopUp) so a covered
// stream sustains its runahead window without demand-missing once per
// window.
func (r *Runtime) policyTouch(clk *sim.Clock, s *sectionRT, tag uint64) {
	tu, ok := s.policy.(prefetch.StreamTopUp)
	if !ok {
		return
	}
	lb := int64(s.spec.Cache.LineBytes)
	r.policyIssue(clk, s, tu.OnPrefetchedTouch(int64(tag)/lb))
}

// policyIssue filters a policy's proposals and issues the survivors as one
// speculative doorbell-batched gather.
//
// The policy runs on the runner thread, off the access path: its table
// work (PerMissOverhead) and the speculative doorbell are charged by
// delaying when the gather is posted — slower predictors land their lines
// later (and count Late more often) — never by stalling the demand access.
func (r *Runtime) policyIssue(clk *sim.Clock, s *sectionRT, cands []int64) {
	if len(cands) == 0 {
		return
	}
	lb := int64(s.spec.Cache.LineBytes)
	var tags []uint64
	var owners []*objectRT
	for _, u := range cands {
		if u < 0 {
			s.pf.Dropped++
			s.mPfDropped.Inc()
			continue
		}
		t := uint64(u * lb)
		o := r.ownerOf(t)
		if o == nil || r.secs[o.place.Section] != s {
			// Past an object's end or outside this section's objects:
			// the proposal cannot be honored here.
			s.pf.Dropped++
			s.mPfDropped.Inc()
			continue
		}
		if _, resident := s.sec.Peek(t); resident {
			continue
		}
		if _, inflight := s.inflight[t]; inflight {
			continue
		}
		if r.recoverFromWbq(clk, s, o, t, t) {
			continue
		}
		tags = append(tags, t)
		owners = append(owners, o)
	}
	r.issueSpeculative(clk, s, tags, owners)
}

// issueSpeculative fetches the given absent line tags of one section in a
// single doorbell-batched gather, marking each landed line speculative.
// Entirely advisory: any failure — no evictable slot, far node
// unreachable, line re-tenanted mid-batch — drops the affected pieces and
// counts them, never surfacing an error (the triggering demand access
// already succeeded).
func (r *Runtime) issueSpeculative(clk *sim.Clock, s *sectionRT, tags []uint64, owners []*objectRT) {
	if len(tags) == 0 {
		return
	}
	var addrs []uint64
	var sizes []int
	var lines []*cache.Line
	var snapOK []bool
	for i, t := range tags {
		l, victim := s.sec.Reserve(t)
		if err := r.retireVictim(clk, s, owners[i], victim); err != nil {
			// The victim's write-back failed hard; give its slot back and
			// skip this piece. The demand path will surface persistent
			// trouble — an advisory fetch must not.
			s.sec.Drop(t)
			s.pf.Dropped++
			s.mPfDropped.Inc()
			continue
		}
		addrs = append(addrs, t)
		sizes = append(sizes, len(l.Data))
		lines = append(lines, l)
		snapOK = append(snapOK, s.snaps != nil &&
			(owners[i] == nil || len(owners[i].selFields) == 0))
	}
	if len(addrs) == 0 {
		return
	}
	post := clk.Now().Add(r.cfg.Net.VectoredPostCost(len(addrs)))
	if s.policy != nil {
		// Plane-adapter callers issue without an installed policy; only the
		// policy hook charges the predictor's own overhead.
		post = post.Add(s.policy.PerMissOverhead())
	}
	if s.spec.Compress {
		r.setCodec(codec.ByteRun)
		defer r.setCodec(codec.None)
	}
	data, done, err := r.tr.GatherOneSided(post, addrs, sizes)
	if err != nil {
		// Advisory under faults: drop every piece whose reserved line is
		// still its own, count them, swallow the error.
		for i, l := range lines {
			if cur, ok := s.sec.Peek(addrs[i]); ok && cur == l {
				s.sec.Drop(addrs[i])
			}
			s.pf.Dropped++
			s.mPfDropped.Inc()
		}
		return
	}
	// Per-line arrival, as in PrefetchBatch: piece i is ready when its own
	// bytes are off the wire.
	readies := make([]sim.Time, len(addrs))
	suffix := 0
	for i := len(addrs) - 1; i >= 0; i-- {
		readies[i] = done.Add(-r.cfg.Net.WireTime(suffix))
		suffix += sizes[i]
	}
	pos := 0
	for i, l := range lines {
		if cur, ok := s.sec.Peek(addrs[i]); ok && cur == l && l.Tag == addrs[i] {
			copy(l.Data, data[pos:pos+sizes[i]])
			if snapOK[i] {
				s.snaps[addrs[i]] = append([]byte(nil), l.Data...)
			}
			s.inflight[addrs[i]] = readies[i]
			s.specul[addrs[i]] = true
			s.pf.Issued++
			s.mPfIssued.Inc()
		} else {
			// Evicted by a later Reserve in this same batch: the bytes
			// arrived but the slot belongs to someone else now.
			s.pf.Dropped++
			s.mPfDropped.Inc()
		}
		pos += sizes[i]
	}
	if r.trc != nil {
		r.trc.Span(post, done, "rt", "prefetch.policy",
			trace.S("section", s.spec.Cache.Name), trace.I("lines", int64(len(addrs))))
	}
}

// LineUnit maps obj[elem] to its cache section and the section plane's
// prefetch unit (the global line index of the element's line). ok=false
// for non-section placements — access programs skip those elements.
func (r *Runtime) LineUnit(name string, elem int64) (sec int, unit int64, ok bool) {
	o, found := r.objs[name]
	if !found || o.place.Kind != PlaceSection || elem < 0 || elem >= o.decl.Count {
		return 0, 0, false
	}
	s := r.secs[o.place.Section]
	addr := o.farBase + uint64(elem)*uint64(o.decl.ElemBytes)
	tag := cache.AlignDown(addr, s.spec.Cache.LineBytes)
	return o.place.Section, int64(tag) / int64(s.spec.Cache.LineBytes), true
}

// PageUnit maps obj[elem] to its swap page number — the page plane's
// prefetch unit. ok=false for non-swap placements.
func (r *Runtime) PageUnit(name string, elem int64) (unit int64, ok bool) {
	o, found := r.objs[name]
	if !found || o.place.Kind != PlaceSwap || r.swapC == nil || elem < 0 || elem >= o.decl.Count {
		return 0, false
	}
	addr := o.farBase + uint64(elem)*uint64(o.decl.ElemBytes)
	return int64((addr - r.swapC.Base()) / swap.PageBytes), true
}

// SectionPrefetchStats reports section idx's prefetch efficacy counters.
func (r *Runtime) SectionPrefetchStats(idx int) prefetch.Efficacy {
	return r.secs[idx].pf
}

// PrefetchStats aggregates prefetch efficacy across the whole runtime:
// every cache section plus the swap pool.
func (r *Runtime) PrefetchStats() prefetch.Efficacy {
	var e prefetch.Efficacy
	for _, s := range r.secs {
		e.Add(s.pf)
	}
	if r.swapC != nil {
		st := r.swapC.Stats()
		e.Add(prefetch.Efficacy{
			Issued:  st.Prefetches,
			Useful:  st.PrefetchUsed,
			Useless: st.PrefetchUseless,
			Dropped: st.PrefetchDropped,
			Late:    st.PrefetchLate,
		})
	}
	return e
}
