package rt

import "fmt"

// RemotePtr is Mira's far-memory pointer encoding (§5.2.1): the highest 16
// bits hold a cache-section ID and the lower 48 bits an offset within the
// section's address space. Section 0 is reserved for pointers to local
// objects — the high bits of a normal local virtual address are zero, so a
// local pointer reinterpreted as a RemotePtr lands in section 0 and is
// dereferenced as a plain load.
type RemotePtr uint64

// LocalSection is the reserved section ID for local pointers.
const LocalSection uint16 = 0

// offsetBits is the width of the offset field.
const offsetBits = 48

// offsetMask extracts the offset field.
const offsetMask = (1 << offsetBits) - 1

// MakePtr assembles a RemotePtr from a section ID and an offset. It panics
// if the offset overflows 48 bits (a far object larger than 256 TB would be
// a configuration bug, not input).
func MakePtr(section uint16, offset uint64) RemotePtr {
	if offset > offsetMask {
		panic(fmt.Sprintf("rt: offset %#x overflows 48-bit RemotePtr field", offset))
	}
	return RemotePtr(uint64(section)<<offsetBits | offset)
}

// Section extracts the section ID.
func (p RemotePtr) Section() uint16 { return uint16(uint64(p) >> offsetBits) }

// Offset extracts the 48-bit offset.
func (p RemotePtr) Offset() uint64 { return uint64(p) & offsetMask }

// IsLocal reports whether the pointer refers to a local object (§5.2.1
// "pointers to both local and remotable objects").
func (p RemotePtr) IsLocal() bool { return p.Section() == LocalSection }

func (p RemotePtr) String() string {
	if p.IsLocal() {
		return fmt.Sprintf("local:%#x", p.Offset())
	}
	return fmt.Sprintf("sec%d:%#x", p.Section(), p.Offset())
}
