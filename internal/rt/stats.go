package rt

import (
	"mira/internal/cache"
	"mira/internal/cluster"
	"mira/internal/faults"
	"mira/internal/netmodel"
	"mira/internal/sim"
	"mira/internal/swap"
	"mira/internal/transport"
)

// ErrFarUnavailable is surfaced by accesses whose retry budget is exhausted
// while the far node is unreachable (re-exported from transport so runtime
// callers need not import it).
var ErrFarUnavailable = transport.ErrFarUnavailable

// DefaultNet returns the paper-calibrated interconnect model.
func DefaultNet() netmodel.Config { return netmodel.DefaultConfig() }

// perLineMetadata is the runtime metadata footprint per configured cache
// line, by structure. Fully-associative sections carry the
// remote-address-to-physical map plus list linkage (§5.3); direct-mapped
// sections only a tag word and flags. These feed the paper's metadata
// comparison (Fig. 20), where Mira's per-line metadata is far below AIFM's
// per-object metadata.
func perLineMetadata(s cache.Structure) int64 {
	switch s {
	case cache.Direct:
		return 16
	case cache.SetAssoc:
		return 24
	default:
		return 48
	}
}

// perPageMetadata is the swap section's per-page-slot metadata (mapping
// entry + LRU linkage).
const perPageMetadata = 16

// MetadataBytes reports the runtime's total metadata footprint for the
// current configuration: per-line section metadata plus the swap page
// table. This is the quantity Fig. 20 compares against AIFM.
func (r *Runtime) MetadataBytes() int64 {
	var total int64
	for _, s := range r.secs {
		total += int64(s.spec.Cache.Lines()) * perLineMetadata(s.spec.Cache.Structure)
	}
	if r.swapC != nil {
		total += int64(r.swapC.Capacity()) * perPageMetadata
	}
	return total
}

// SectionStats returns section idx's counters.
func (r *Runtime) SectionStats(idx int) cache.Stats {
	return r.secs[idx].sec.Stats()
}

// SectionConfig returns section idx's cache configuration.
func (r *Runtime) SectionConfig(idx int) cache.Config {
	return r.secs[idx].spec.Cache
}

// NumSections reports the number of non-swap sections.
func (r *Runtime) NumSections() int { return len(r.secs) }

// SwapStats returns the swap section's counters (zero if no swap section).
func (r *Runtime) SwapStats() swap.Stats {
	if r.swapC == nil {
		return swap.Stats{}
	}
	return r.swapC.Stats()
}

// HasSwap reports whether a swap section was created at Bind.
func (r *Runtime) HasSwap() bool { return r.swapC != nil }

// SwapPrefetcher installs a page prefetcher on the swap section (used by
// the FastSwap/Leap baselines and Mira's pointer-following swap prefetch
// for MCF). Must be called after Bind.
func (r *Runtime) SwapPrefetcher(pf swap.Prefetcher) {
	if r.swapC != nil {
		r.swapC.SetPrefetcher(pf)
	}
}

// BytesMoved reports total bytes that crossed the interconnect (summed
// over every link in cluster mode).
func (r *Runtime) BytesMoved() int64 { return r.tr.BytesMoved() }

// NetStats reports the transport's resilience counters: retries, timeouts,
// checksum failures, breaker trips, and degraded-mode activity.
func (r *Runtime) NetStats() transport.Stats { return r.tr.Stats() }

// FaultStats reports what the fault injector actually injected (zero when
// faults are disabled). In cluster mode fault domains are per-node and
// their stats are summed here; see ClusterStats for the breakdown.
func (r *Runtime) FaultStats() faults.Stats {
	if r.pool != nil {
		var sum faults.Stats
		for _, ns := range r.pool.NodeStats() {
			f := ns.Faults
			sum.Ops += f.Ops
			sum.DownRefusals += f.DownRefusals
			sum.Partitioned += f.Partitioned
			sum.IOErrors += f.IOErrors
			sum.Delays += f.Delays
			sum.BitFlips += f.BitFlips
			sum.Wipes += f.Wipes
		}
		return sum
	}
	if r.inj == nil {
		return faults.Stats{}
	}
	return r.inj.Stats()
}

// ClusterStats reports the per-node cluster counters (nil in single-node
// mode), ordered by node ID.
func (r *Runtime) ClusterStats() []cluster.NodeStats {
	if r.pool == nil {
		return nil
	}
	return r.pool.NodeStats()
}

// ShareBandwidth makes this runtime contend for bw with other runtimes —
// simulated threads with private cache sections share the physical link
// (§4.6 multithreading), and co-located tenants share the compute node's
// NIC in serving mode. In cluster mode every far node's link is replaced
// by bw: the shared bottleneck is the compute side, which all remote
// traffic crosses regardless of which far node serves it.
func (r *Runtime) ShareBandwidth(bw *netmodel.Bandwidth) {
	if r.trT != nil {
		r.trT.BW = bw
		return
	}
	if r.pool != nil {
		r.pool.ShareBandwidth(bw)
	}
}

// SwapLock serializes the swap fault path across threads (must be called
// after Bind; no-op without a swap section).
func (r *Runtime) SwapLock(l *sim.Serializer) {
	if r.swapC != nil {
		r.swapC.SetLock(l)
	}
}

// SetActiveTid selects the simulated thread to which subsequent cache
// events are attributed (per-tid hit/miss/evict counters; see TidStats).
// The multithreaded drivers call it on every scheduler resume;
// single-threaded runs leave it at 0.
func (r *Runtime) SetActiveTid(tid int) { r.activeTid = tid }

// TidStats reports section idx's counters attributed to simulated thread
// tid (zeros for a tid the section never saw). Under interleaved execution
// over a shared section these expose cross-thread eviction interference:
// a thread's evict count includes victims another thread fetched.
func (r *Runtime) TidStats(idx, tid int) (hits, misses, evicts int64) {
	s := r.secs[idx]
	at := func(v []int64) int64 {
		if tid < len(v) {
			return v[tid]
		}
		return 0
	}
	return at(s.tidHits), at(s.tidMisses), at(s.tidEvicts)
}

// ResetStats clears every section's and the swap pool's counters (between
// profiling rounds).
func (r *Runtime) ResetStats() {
	for _, s := range r.secs {
		s.sec.ResetStats()
	}
	if r.swapC != nil {
		r.swapC.ResetStats()
	}
}

// MissCount aggregates misses across sections and swap major faults — the
// cheap per-access probe the profiler samples (§4.1: metrics "collected
// only when a non-native cache event happens").
func (r *Runtime) MissCount() int64 {
	var t int64
	for _, s := range r.secs {
		t += s.sec.Stats().Misses
	}
	if r.swapC != nil {
		t += r.swapC.Stats().MajorFaults
	}
	return t
}

// SwapFaultsIn reports the swap section's major faults on the pages backing
// an object (per-object miss attribution when everything shares the swap
// pool).
func (r *Runtime) SwapFaultsIn(name string) int64 {
	o, ok := r.objs[name]
	if !ok || o.place.Kind != PlaceSwap || r.swapC == nil {
		return 0
	}
	return r.swapC.FaultsInRange(o.farBase, o.decl.SizeBytes())
}

// ObjectStats reports an object's cache-section hit/miss counters (zero
// for swap/local placements — their events are counted by the swap cache).
func (r *Runtime) ObjectStats(name string) (hits, misses int64) {
	if o, ok := r.objs[name]; ok {
		return o.hits, o.misses
	}
	return 0, 0
}

// ObjectPlacement reports where an object was placed (tests, planner
// introspection).
func (r *Runtime) ObjectPlacement(name string) (Placement, bool) {
	o, ok := r.objs[name]
	if !ok {
		return Placement{}, false
	}
	return o.place, true
}
