package rt

import (
	"strings"
	"testing"

	"mira/internal/cache"
)

func TestAccessorsAndStats(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	if r.Transport() == nil {
		t.Fatal("no transport")
	}
	if got := r.Config().SwapPool; got != 64<<10 {
		t.Fatalf("config swap pool %d", got)
	}
	if r.NumSections() != 1 {
		t.Fatal("section count")
	}
	if got := r.SectionConfig(0); got.Name != "items" || got.Structure != cache.SetAssoc {
		t.Fatalf("section config %+v", got)
	}
	if !r.HasSwap() {
		t.Fatal("swap missing")
	}

	// Drive one miss through the section and one through swap, then check
	// the counters and reset.
	buf := make([]byte, 8)
	if err := r.Access(clk, "items", 3, fld(0, 8), buf, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Access(clk, "vec", 5, fld(0, 8), buf, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if r.MissCount() == 0 {
		t.Fatal("no misses counted")
	}
	if r.SwapStats().MajorFaults == 0 {
		t.Fatal("no swap fault counted")
	}
	r.ResetStats()
	if r.MissCount() != 0 {
		t.Fatalf("miss count %d after reset", r.MissCount())
	}
	if r.SwapStats().MajorFaults != 0 {
		t.Fatal("swap stats survived reset")
	}
}

func TestFarAddr(t *testing.T) {
	r, _ := mkRuntime(t, nil)
	a0, err := r.FarAddr("items", 0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.FarAddr("items", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a0+2*64 {
		t.Fatalf("element stride wrong: %d vs %d", a0, a2)
	}
	if _, err := r.FarAddr("nosuch", 0); err == nil {
		t.Fatal("unknown object accepted")
	}
}

func TestConfigAndPtrStrings(t *testing.T) {
	for k, want := range map[PlaceKind]string{PlaceSwap: "swap", PlaceSection: "section", PlaceLocal: "local"} {
		if k.String() != want {
			t.Fatalf("PlaceKind %d renders %q", int(k), k.String())
		}
	}
	if got := PlaceKind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind renders %q", got)
	}
	p := MakePtr(2, 0x40)
	if ps := p.String(); !strings.Contains(ps, "2") {
		t.Fatalf("ptr render %q", ps)
	}
	if lp := MakePtr(LocalSection, 0x40).String(); !strings.Contains(lp, "local") {
		t.Fatalf("local ptr render %q", lp)
	}
}

// Pinned lines survive eviction pressure; unpinning releases them. This is
// the §4.6 shared-section don't-evict mechanism at the runtime level.
func TestPinBlocksEviction(t *testing.T) {
	r, clk := mkRuntime(t, func(c *Config) {
		// Shrink the section to 4 lines of 128 B so pressure is easy.
		c.Sections[0].Cache.SizeBytes = 512
		c.Sections[0].Cache.Ways = 4
		c.Sections[0].Cache.Structure = cache.FullAssoc
	})
	buf := make([]byte, 8)
	// Write element 0 (dirty), pin its line, then stream far past
	// capacity.
	if err := r.Access(clk, "items", 0, fld(0, 8), []byte{1, 2, 3, 4, 5, 6, 7, 8}, true, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	r.Pin("items", 0, +1)
	for e := int64(2); e < 40; e += 2 { // element stride 2 = one per 128B line
		if err := r.Access(clk, "items", e, fld(0, 8), buf, false, AccessOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	// The pinned line must still hit (no miss-count change on re-access).
	before := r.MissCount()
	if err := r.Access(clk, "items", 0, fld(0, 8), buf, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if r.MissCount() != before {
		t.Fatal("pinned line was evicted")
	}
	if string(buf) != string([]byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("pinned line lost its data: %v", buf)
	}
	r.Pin("items", 0, -1)
	// Pinning unknown or swap-placed objects is a harmless no-op.
	r.Pin("nosuch", 0, +1)
	r.Pin("vec", 0, +1)
}
