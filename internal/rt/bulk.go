package rt

import (
	"fmt"

	"mira/internal/cache"
	"mira/internal/codec"
	"mira/internal/sim"
)

// nativeChunk is the granularity at which bulk local copies charge
// NativeAccess (one hardware cache line's worth of streaming copy).
const nativeChunk = 64

// BulkRead reads count elements starting at obj[elem] into buf, the path
// tensor intrinsics use. Missing lines are fetched with their latencies
// overlapped (independent one-sided reads pipeline on the NIC; the wire
// serializes via the bandwidth accountant), which is what makes layer-wise
// streaming cheap for GPT-2 (§6.1).
func (r *Runtime) BulkRead(clk *sim.Clock, name string, elem int64, buf []byte) error {
	return r.bulk(clk, name, elem, buf, false)
}

// BulkWrite writes buf over the elements starting at obj[elem]. Fully
// covered missing lines are allocated without fetching (§4.5 read/write
// optimization); partially covered boundary lines are fetched first.
func (r *Runtime) BulkWrite(clk *sim.Clock, name string, elem int64, buf []byte) error {
	return r.bulk(clk, name, elem, buf, true)
}

func (r *Runtime) bulk(clk *sim.Clock, name string, elem int64, buf []byte, write bool) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("rt: bulk access to unknown object %q", name)
	}
	eb := uint64(o.decl.ElemBytes)
	off := uint64(elem) * eb
	if elem < 0 || off+uint64(len(buf)) > uint64(o.decl.SizeBytes()) {
		return fmt.Errorf("rt: bulk access [%d,+%d) outside %q (%d bytes)", off, len(buf), name, o.decl.SizeBytes())
	}
	switch o.place.Kind {
	case PlaceLocal:
		chunks := (len(buf) + nativeChunk - 1) / nativeChunk
		clk.Advance(r.cfg.Cost.NativeAccess * sim.Duration(chunks))
		if write {
			copy(o.local[off:], buf)
		} else {
			copy(buf, o.local[off:])
		}
		return nil
	case PlaceSwap:
		chunks := (len(buf) + nativeChunk - 1) / nativeChunk
		clk.Advance(r.cfg.Cost.NativeAccess * sim.Duration(chunks))
		if r.cfg.SwapCompress {
			r.setCodec(codec.ByteRun)
			defer r.setCodec(codec.None)
		}
		if write {
			return r.swapC.Write(clk, o.farBase+off, buf)
		}
		return r.swapC.Read(clk, o.farBase+off, buf)
	}

	s := r.secs[o.place.Section]
	lb := s.spec.Cache.LineBytes
	far := o.farBase + off

	// Pass 1: start fetches for all missing lines so their latencies
	// overlap.
	var fetchDone sim.Time
	for tag := cache.AlignDown(far, lb); tag < far+uint64(len(buf)); tag += uint64(lb) {
		if _, resident := s.sec.Peek(tag); resident {
			o.hits++
			continue
		}
		o.misses++
		if ready, inflight := s.inflight[tag]; inflight {
			if ready > fetchDone {
				fetchDone = ready
			}
			continue
		}
		fullyCovered := tag >= far && tag+uint64(lb) <= far+uint64(len(buf))
		l, victim := s.sec.Reserve(tag)
		if err := r.retireVictim(clk, s, o, victim); err != nil {
			return err
		}
		clk.Advance(r.cfg.Cost.Lookup(s.spec.Cache.Structure))
		if write && fullyCovered {
			continue // write-allocate without fetch
		}
		done, err := r.fetchLine(clk.Now(), s, o, l)
		if err != nil {
			return err
		}
		s.inflight[l.Tag] = done
		if done > fetchDone {
			fetchDone = done
		}
	}
	clk.AdvanceTo(fetchDone)

	// Pass 2: copy through the now-resident lines.
	done := 0
	for done < len(buf) {
		addr := far + uint64(done)
		tag := cache.AlignDown(addr, lb)
		delete(s.inflight, tag)
		l, resident := s.sec.Peek(addr)
		if !resident {
			// A later fetch in pass 1 evicted an earlier line of
			// the same range (section smaller than the transfer):
			// fetch it back, demand-paged.
			var victim cache.Victim
			l, victim = s.sec.Reserve(addr)
			if err := r.retireVictim(clk, s, o, victim); err != nil {
				return err
			}
			fdone, err := r.fetchLine(clk.Now(), s, o, l)
			if err != nil {
				return err
			}
			clk.AdvanceTo(fdone)
		}
		lineOff := int(addr - l.Tag)
		n := lb - lineOff
		if n > len(buf)-done {
			n = len(buf) - done
		}
		clk.Advance(r.cfg.Cost.NativeAccess * sim.Duration((n+nativeChunk-1)/nativeChunk))
		if write {
			copy(l.Data[lineOff:], buf[done:done+n])
			l.Dirty = true
		} else {
			copy(buf[done:done+n], l.Data[lineOff:])
		}
		done += n
	}
	return nil
}
