package rt

import (
	"mira/internal/cache"
	"mira/internal/sim"
)

// CostModel holds the compute-node-side software costs the runtime charges.
// Network costs live in netmodel.Config; these are the local CPU costs that
// differentiate a native load from a dereference through cache-section
// metadata — the distinction at the heart of §4.4.
type CostModel struct {
	// NativeAccess is a plain local memory access (a compiled native
	// load/store, a hit in the swap section's mapped page, or an access
	// to a local object).
	NativeAccess sim.Duration
	// LookupDirect/LookupSet/LookupFull are the per-dereference cache
	// lookup costs by section structure (§4.2: the associativity /
	// lookup-overhead tradeoff).
	LookupDirect sim.Duration
	LookupSet    sim.Duration
	LookupFull   sim.Duration
	// MissHandling is the software cost of servicing a section miss
	// (victim selection, metadata update), excluding network time.
	MissHandling sim.Duration
	// ComputeOp is the cost of one IR scalar operator.
	ComputeOp sim.Duration
	// FloatOp is the cost of one floating-point operation inside tensor
	// intrinsics.
	FloatOp sim.Duration
	// ProfileEvent is the cost of one compiler-inserted profiling probe
	// (§4.1 coarse-grained profiling); charged only when profiling runs.
	ProfileEvent sim.Duration
}

// DefaultCostModel is calibrated so the relative magnitudes match the
// paper's observations: native ~1 ns, direct lookup a few ns, full-assoc
// lookup tens of ns (AIFM-style per-access software overhead is ~85 ns; see
// internal/baselines/aifm).
func DefaultCostModel() CostModel {
	return CostModel{
		NativeAccess: 1 * sim.Nanosecond,
		LookupDirect: 6 * sim.Nanosecond,
		LookupSet:    14 * sim.Nanosecond,
		LookupFull:   35 * sim.Nanosecond,
		MissHandling: 120 * sim.Nanosecond,
		ComputeOp:    1 * sim.Nanosecond,
		FloatOp:      1 * sim.Nanosecond,
		ProfileEvent: 4 * sim.Nanosecond,
	}
}

// Lookup returns the dereference cost for a section structure.
func (c CostModel) Lookup(s cache.Structure) sim.Duration {
	switch s {
	case cache.Direct:
		return c.LookupDirect
	case cache.SetAssoc:
		return c.LookupSet
	default:
		return c.LookupFull
	}
}
