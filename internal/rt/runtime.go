// Package rt implements Mira's local-node runtime (§4.4, §5): the section
// manager over the configurable cache, the remote-pointer dereference fast
// and slow paths, asynchronous prefetch and eviction-hint machinery,
// selective transmission, bulk tensor paths, and the allocator pair
// (buffering local allocator over the far node's remote allocator).
//
// Every operation takes the simulated thread's clock and charges virtual
// time according to the CostModel and the network model; data movement is
// real, so programs executed through the runtime compute correct results.
package rt

import (
	"fmt"
	"sort"

	"mira/internal/cache"
	"mira/internal/cluster"
	"mira/internal/codec"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/ir"
	"mira/internal/offload"
	"mira/internal/prefetch"
	"mira/internal/sim"
	"mira/internal/swap"
	"mira/internal/trace"
	"mira/internal/transport"
)

// AccessOpts carries the compiler's per-site annotations into the runtime.
type AccessOpts struct {
	// Native marks a dereference the compiler proved resolvable as a
	// native load (§4.4). If the line is unexpectedly absent the access
	// falls back to the full path.
	Native bool
	// NoFetch marks a store that the compiler proved will overwrite the
	// whole line (write-only loops, §4.5): a miss allocates the line
	// without fetching it.
	NoFetch bool
}

// farStore is the untimed far-memory store behind the runtime: allocation
// and direct byte access, satisfied by a single *farmem.Node or by a
// *cluster.Pool spanning many of them.
type farStore interface {
	Alloc(size uint64) (uint64, error)
	Read(addr uint64, buf []byte) error
	Write(addr uint64, buf []byte) error
	CPUSlowdown() float64
}

// Runtime is one compute-node runtime instance.
type Runtime struct {
	cfg   Config
	node  *farmem.Node   // the single far node (nil in cluster mode)
	pool  *cluster.Pool  // the far-node cluster (nil in single-node mode)
	store farStore       // node or pool: the untimed data/alloc path
	tr    transport.Link // the timed data path (node's transport or the pool)
	trT   *transport.T   // the single transport (nil in cluster mode)

	inj    *faults.Injector // nil unless Config.Faults is enabled
	engine *offload.Engine  // scatter-gather offload engine (cluster mode only)
	la     *LocalAllocator
	swapC  *swap.Cache
	swapSz int64 // bytes of swap-placed objects
	secs   []*sectionRT
	objs   map[string]*objectRT

	localBytes int64 // local-placed object bytes (count against budget)
	lastFlush  sim.Time
	wbqStats   WbqStats

	// byFar indexes section-placed objects sorted by farBase, so dirty-line
	// owner resolution is deterministic (see ownerOf). Rebuilt by Bind.
	byFar []*objectRT

	// trc is the runtime's trace buffer (nil when tracing is disabled);
	// reg is the metrics registry backing lazily-created per-tid counters.
	trc *trace.Buffer
	reg *trace.Registry

	// activeTid is the simulated thread currently driving the runtime
	// (SetActiveTid); cache events are attributed to it.
	activeTid int

	// secScale is the live elastic scale of the cache sections (0 or 1 =
	// the bound size; see SetSectionScale).
	secScale float64
}

type sectionRT struct {
	id       uint16 // RemotePtr section ID (1-based; 0 = local)
	spec     SectionSpec
	sec      cache.Section
	inflight map[uint64]sim.Time // line tag -> fetch completion
	wbq      *writebackQueue     // async eviction pipeline (nil when disabled)

	// policy is the section's advisory miss-path prefetcher (nil = none);
	// specul marks prefetched tags not yet touched by a demand access, and
	// pf accumulates the zoo's efficacy counters. Every prefetch path —
	// compiled statements and the policy hook — feeds the same counters.
	policy prefetch.Policy
	specul map[uint64]bool
	pf     prefetch.Efficacy

	// snaps holds the last-fetched bytes of each resident line when the
	// section compresses (spec.Compress): write-back diffs against the
	// snapshot and ships only the changed ranges. Nil when disabled. A
	// snapshot lives exactly as long as its line is resident — it is taken
	// at fetch and consumed (deleted) when the dirty line leaves the cache.
	snaps map[uint64][]byte

	// Per-section metrics (all nil when tracing is disabled).
	mHit, mMiss, mEvict                          *trace.Counter
	mPfIssued, mPfUseful, mPfUseless, mPfDropped *trace.Counter
	mMissLat                                     *trace.Histogram

	// Per-tid attribution, indexed by simulated thread id and grown on
	// demand: interleaved threads sharing this section each see their own
	// hit/miss/evict counts (eviction interference shows up here). The
	// parallel trace counters are created lazily per tid; lblOpen is the
	// section's label prefix without the closing brace.
	tidHits, tidMisses, tidEvicts []int64
	mTidHit, mTidMiss, mTidEvict  []*trace.Counter
	lblOpen                       string
}

type objectRT struct {
	decl    *ir.Object
	place   Placement
	farBase uint64 // far address of element 0 (swap or section placement)
	local   []byte // backing when PlaceLocal
	// homeSec is the cache section this object belongs to when it is (or
	// returns to) the line plane: its bound placement's section under the
	// hybrid layout, -1 when it has none (swap- or local-only objects).
	homeSec int
	// selective-transmission resolution for the object's section
	selFields []ir.Field
	selBytes  int
	// per-object access counters (Fig. 8's per-array miss rates)
	hits, misses int64
}

// New creates a runtime over node, or — when cfg.Cluster is set — over a
// sharded cluster.Pool built from it (node is then ignored and may be
// nil). Call Bind before executing a program.
func New(cfg Config, node *farmem.Node) (*Runtime, error) {
	if cfg.Cost == (CostModel{}) {
		cfg.Cost = DefaultCostModel()
	}
	if cfg.Net.BytesPerSecond == 0 {
		cfg.Net = DefaultNet()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Runtime{
		cfg:  cfg,
		objs: make(map[string]*objectRT),
	}
	if cfg.Cluster != nil {
		copts := *cfg.Cluster
		if copts.Net.BytesPerSecond == 0 {
			copts.Net = cfg.Net
		}
		if copts.Policy == nil && cfg.Resilience != nil {
			pol := *cfg.Resilience
			copts.Policy = &pol
		}
		pool, err := cluster.New(copts)
		if err != nil {
			return nil, err
		}
		r.pool = pool
		r.store = pool
		r.tr = pool
		r.engine = offload.NewEngine(pool, r, offload.Config{
			Net:       cfg.Net,
			Chunk:     cfg.OffloadChunk,
			LocalCost: cfg.Cost.NativeAccess,
		})
	} else {
		r.node = node
		r.store = node
		trT := transport.New(node, cfg.Net)
		if cfg.Resilience != nil {
			trT.SetPolicy(*cfg.Resilience)
		}
		if cfg.Faults != nil && cfg.Faults.Enabled() {
			r.inj = faults.New(node, *cfg.Faults)
			trT.SetBackend(r.inj)
		}
		r.trT = trT
		r.tr = trT
	}
	r.la = NewLocalAllocator(1<<20, r.store.Alloc)
	for i, spec := range cfg.Sections {
		sec, err := cache.New(spec.Cache)
		if err != nil {
			return nil, err
		}
		srt := &sectionRT{
			id:       uint16(i + 1),
			spec:     spec,
			sec:      sec,
			inflight: make(map[uint64]sim.Time),
			specul:   make(map[uint64]bool),
			wbq:      newWritebackQueue(cfg.writebackQueueLimit()),
		}
		if spec.Compress {
			srt.snaps = make(map[uint64][]byte)
		}
		r.secs = append(r.secs, srt)
	}
	return r, nil
}

// Transport exposes the runtime's single-node transport (offload glue,
// bandwidth sharing, tests). Nil in cluster mode — use Link or Pool there.
func (r *Runtime) Transport() *transport.T { return r.trT }

// Link exposes the timed far-memory data path: the single transport or
// the cluster pool.
func (r *Runtime) Link() transport.Link { return r.tr }

// Pool exposes the far-node cluster, or nil in single-node mode.
func (r *Runtime) Pool() *cluster.Pool { return r.pool }

// ScatterEngine exposes the scatter-gather offload engine, or nil in
// single-node mode. The executor probes for this capability to decide
// whether an offloaded call can be scattered across the cluster.
func (r *Runtime) ScatterEngine() *offload.Engine { return r.engine }

// ObjectExtent implements offload.Resolver: the far extent of a bound,
// non-local object. Local objects report ok=false — offloaded code must
// not touch them.
func (r *Runtime) ObjectExtent(name string) (base uint64, elemBytes int, count int64, ok bool) {
	o, found := r.objs[name]
	if !found || o.place.Kind == PlaceLocal {
		return 0, 0, 0, false
	}
	return o.farBase, o.decl.ElemBytes, o.decl.Count, true
}

// Injector exposes the fault injector, or nil when faults are disabled.
// In cluster mode fault domains are per-node: see Pool().Injector(i).
func (r *Runtime) Injector() *faults.Injector { return r.inj }

// Node exposes the far-memory node (nil in cluster mode).
func (r *Runtime) Node() *farmem.Node { return r.node }

// Config returns the runtime's configuration.
func (r *Runtime) Config() Config { return r.cfg }

// Bind allocates every object of p according to the configured placements
// and creates the swap section over the swap-placed heap. Initial object
// contents are zero; use InitObject to load workload data.
func (r *Runtime) Bind(p *ir.Program) error {
	if r.cfg.Hybrid {
		return r.bindHybrid(p)
	}
	// Partition objects.
	var swapObjs []*ir.Object
	for _, o := range p.Objects {
		pl, ok := r.cfg.Placements[o.Name]
		if !ok {
			if o.Local {
				pl = Placement{Kind: PlaceLocal}
			} else {
				pl = Placement{Kind: PlaceSwap}
			}
		}
		ort := &objectRT{decl: o, place: pl, homeSec: -1}
		switch pl.Kind {
		case PlaceLocal:
			ort.local = make([]byte, o.SizeBytes())
			r.localBytes += o.SizeBytes()
		case PlaceSwap:
			swapObjs = append(swapObjs, o)
		case PlaceSection:
			ort.homeSec = pl.Section
			s := r.secs[pl.Section]
			lb := uint64(s.spec.Cache.LineBytes)
			// Align the base and pad the tail so every line of
			// the object stays inside its allocation.
			size := (uint64(o.SizeBytes()) + 2*lb + lb - 1) / lb * lb
			var base uint64
			var err error
			if r.pool != nil {
				// Cluster mode: the section ID is the placement key, so
				// every object of a section colocates on the section's
				// home node and misses/evictions/flushes route there.
				base, err = r.pool.AllocSection(s.id, size)
			} else {
				base, err = r.la.Alloc(size)
			}
			if err != nil {
				return fmt.Errorf("rt: bind %q: %w", o.Name, err)
			}
			ort.farBase = (base + lb - 1) / lb * lb
			r.resolveSelective(ort, s)
		}
		r.objs[o.Name] = ort
	}
	// Lay swap objects out in one contiguous heap region.
	if len(swapObjs) > 0 {
		sort.Slice(swapObjs, func(i, j int) bool { return swapObjs[i].Name < swapObjs[j].Name })
		var total int64
		offsets := make(map[string]int64, len(swapObjs))
		for _, o := range swapObjs {
			offsets[o.Name] = total
			total += (o.SizeBytes() + swap.PageBytes - 1) / swap.PageBytes * swap.PageBytes
		}
		var base uint64
		var err error
		if r.pool != nil {
			// Cluster mode: the swap heap is striped across the nodes.
			base, err = r.pool.Alloc(uint64(total))
		} else {
			base, err = r.la.Alloc(uint64(total))
		}
		if err != nil {
			return fmt.Errorf("rt: bind swap heap: %w", err)
		}
		pool := r.cfg.SwapPool
		if pool <= 0 {
			return fmt.Errorf("rt: program has swap-placed objects but SwapPool is %d", pool)
		}
		sc, err := swap.New(r.cfg.effectiveSwapCfg(pool), r.tr, base, total, nil)
		if err != nil {
			return err
		}
		r.swapC = sc
		r.swapSz = total
		for _, o := range swapObjs {
			r.objs[o.Name].farBase = base + uint64(offsets[o.Name])
		}
	}
	if r.localBytes+r.cfg.SwapPool+r.sectionBytes() > r.cfg.LocalBudget {
		return fmt.Errorf("rt: local objects (%d) + cache carve-up exceed budget %d",
			r.localBytes, r.cfg.LocalBudget)
	}
	r.rebuildOwnerIndex()
	return nil
}

func (r *Runtime) sectionBytes() int64 {
	var t int64
	for _, s := range r.secs {
		t += s.spec.Cache.SizeBytes
	}
	return t
}

// resolveSelective precomputes the object's selective-transmission field
// set for its section.
func (r *Runtime) resolveSelective(ort *objectRT, s *sectionRT) {
	if !s.spec.TwoSided || len(s.spec.SelectiveFields) == 0 {
		return
	}
	total := 0
	for _, name := range s.spec.SelectiveFields {
		if f, ok := ort.decl.FieldByName(name); ok {
			ort.selFields = append(ort.selFields, f)
			total += f.Bytes
		}
	}
	// Selective transmission only pays off if it moves fewer bytes than
	// the whole element.
	if total == 0 || total >= ort.decl.ElemBytes {
		ort.selFields = nil
		total = 0
	}
	ort.selBytes = total
}

// InitObject loads workload bytes into an object before timed execution
// (setup is free: the paper's figures never charge data-generation time).
func (r *Runtime) InitObject(name string, data []byte) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("rt: InitObject: unknown object %q", name)
	}
	if int64(len(data)) > o.decl.SizeBytes() {
		return fmt.Errorf("rt: InitObject %q: %d bytes exceed object size %d", name, len(data), o.decl.SizeBytes())
	}
	if o.place.Kind == PlaceLocal {
		copy(o.local, data)
		return nil
	}
	return r.store.Write(o.farBase, data)
}

// DumpObject returns the object's current far-memory (or local) contents.
// Call FlushAll first to include dirty cached lines.
func (r *Runtime) DumpObject(name string) ([]byte, error) {
	o, ok := r.objs[name]
	if !ok {
		return nil, fmt.Errorf("rt: DumpObject: unknown object %q", name)
	}
	if o.place.Kind == PlaceLocal {
		out := make([]byte, len(o.local))
		copy(out, o.local)
		return out, nil
	}
	out := make([]byte, o.decl.SizeBytes())
	if err := r.store.Read(o.farBase, out); err != nil {
		return nil, err
	}
	return out, nil
}

// FarAddr returns the far address of obj[elem] (offload argument marshaling,
// §4.8). Local objects have no far address.
func (r *Runtime) FarAddr(name string, elem int64) (uint64, error) {
	o, ok := r.objs[name]
	if !ok {
		return 0, fmt.Errorf("rt: FarAddr: unknown object %q", name)
	}
	if o.place.Kind == PlaceLocal {
		return 0, fmt.Errorf("rt: FarAddr: object %q is local", name)
	}
	return o.farBase + uint64(elem)*uint64(o.decl.ElemBytes), nil
}

// Ptr returns the RemotePtr for obj[elem]: section ID in the high bits,
// offset within the object's section address space below (§5.2.1).
func (r *Runtime) Ptr(name string, elem int64) (RemotePtr, error) {
	o, ok := r.objs[name]
	if !ok {
		return 0, fmt.Errorf("rt: Ptr: unknown object %q", name)
	}
	off := uint64(elem) * uint64(o.decl.ElemBytes)
	switch o.place.Kind {
	case PlaceSection:
		return MakePtr(r.secs[o.place.Section].id, o.farBase-farmem.DefaultBase+off), nil
	default:
		return MakePtr(LocalSection, off), nil
	}
}

// Access reads or writes the byte range of obj[elem].field, charging clk.
func (r *Runtime) Access(clk *sim.Clock, name string, elem int64, field ir.Field, buf []byte, write bool, opts AccessOpts) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("rt: access to unknown object %q", name)
	}
	if elem < 0 || elem >= o.decl.Count {
		return fmt.Errorf("rt: %q[%d] out of range [0,%d)", name, elem, o.decl.Count)
	}
	off := uint64(elem)*uint64(o.decl.ElemBytes) + uint64(field.Offset)
	if len(buf) > field.Bytes {
		buf = buf[:field.Bytes]
	}
	switch o.place.Kind {
	case PlaceLocal:
		clk.Advance(r.cfg.Cost.NativeAccess)
		if write {
			copy(o.local[off:], buf)
		} else {
			copy(buf, o.local[off:])
		}
		return nil
	case PlaceSwap:
		clk.Advance(r.cfg.Cost.NativeAccess)
		if r.cfg.SwapCompress {
			r.setCodec(codec.ByteRun)
			defer r.setCodec(codec.None)
		}
		if write {
			return r.swapC.Write(clk, o.farBase+off, buf)
		}
		return r.swapC.Read(clk, o.farBase+off, buf)
	default:
		return r.sectionAccess(clk, o, o.farBase+off, buf, write, opts)
	}
}

// sectionAccess performs a (possibly line-crossing) access through the
// object's cache section.
func (r *Runtime) sectionAccess(clk *sim.Clock, o *objectRT, far uint64, buf []byte, write bool, opts AccessOpts) error {
	s := r.secs[o.place.Section]
	lb := s.spec.Cache.LineBytes
	done := 0
	for done < len(buf) {
		addr := far + uint64(done)
		lineOff := int(addr - cache.AlignDown(addr, lb))
		n := lb - lineOff
		if n > len(buf)-done {
			n = len(buf) - done
		}
		full := write && lineOff == 0 && n == lb
		l, ev, err := r.lineFor(clk, s, o, addr, opts, write, full)
		if err != nil {
			return err
		}
		if write {
			copy(l.Data[lineOff:], buf[done:done+n])
			l.Dirty = true
		} else {
			copy(buf[done:done+n], l.Data[lineOff:])
		}
		// The advisory policy runs only after the demand access has fully
		// completed: its speculative reservations may evict any line —
		// including the one just filled — without corrupting the
		// in-progress copy.
		switch ev {
		case accessMissed:
			r.policyMiss(clk, s, cache.AlignDown(addr, lb))
		case accessSpecTouched:
			r.policyTouch(clk, s, cache.AlignDown(addr, lb))
		}
		done += n
	}
	return nil
}

// accessEvent tells sectionAccess which advisory-policy hook (if any) a
// line access should fire once the data copy is done.
type accessEvent uint8

const (
	accessHit accessEvent = iota
	accessMissed
	accessSpecTouched
)

// lineFor returns the resident, ready cache line containing addr, running
// the dereference fast/slow path and charging clk, and reports whether the
// access demand-missed or first-touched a speculative line (the caller
// fires the section's advisory prefetch hooks after the access completes).
// fullLine marks a write that will overwrite the whole line.
func (r *Runtime) lineFor(clk *sim.Clock, s *sectionRT, o *objectRT, addr uint64, opts AccessOpts, write, fullLine bool) (*cache.Line, accessEvent, error) {
	tag := cache.AlignDown(addr, s.spec.Cache.LineBytes)
	if opts.Native {
		// Compiled native load: no lookup cost. The compiler proved
		// residency; verify cheaply and fall back if it was wrong
		// (e.g. a mid-loop eviction by another thread).
		if l, ok := s.sec.Peek(addr); ok {
			o.hits++
			s.mHit.Inc()
			r.bumpTid(s, &s.tidHits, &s.mTidHit, "hit")
			ev := accessHit
			if s.touchSpec(clk, tag) {
				ev = accessSpecTouched
			}
			clk.Advance(r.cfg.Cost.NativeAccess)
			r.waitReady(clk, s, tag)
			return l, ev, nil
		}
	}
	clk.Advance(r.cfg.Cost.Lookup(s.spec.Cache.Structure))
	if l, ok := s.sec.Lookup(addr); ok {
		o.hits++
		s.mHit.Inc()
		r.bumpTid(s, &s.tidHits, &s.mTidHit, "hit")
		ev := accessHit
		if s.touchSpec(clk, tag) {
			ev = accessSpecTouched
		}
		r.waitReady(clk, s, tag)
		return l, ev, nil
	}
	// Miss (§5.2.1 "loading an rmem pointer from far memory").
	o.misses++
	s.mMiss.Inc()
	r.bumpTid(s, &s.tidMisses, &s.mTidMiss, "miss")
	clk.Advance(r.cfg.Cost.MissHandling)
	if r.cfg.Profiling {
		clk.Advance(r.cfg.Cost.ProfileEvent)
	}
	// A miss on an in-flight tag means the prefetched line was dropped
	// before this access arrived; clear the stale tag so it cannot
	// suppress future prefetches of the line. Its speculative mark (if
	// any) dies with it — the prefetch neither hid this miss nor wasted a
	// resident slot.
	delete(s.inflight, tag)
	delete(s.specul, tag)
	l, victim := s.sec.Reserve(addr)
	if err := r.retireVictim(clk, s, o, victim); err != nil {
		return nil, accessHit, err
	}
	// Read-your-writes over the async eviction pipeline: a line parked in
	// the write-back queue is the newest copy — recover it locally. Taken
	// even for full-line stores (the queued entry must die either way, or
	// a later drain would clobber the new store).
	if s.wbq != nil {
		if e, ok := s.wbq.take(tag); ok {
			r.wbqStats.Hits++
			copy(l.Data, e.data)
			l.Dirty = true
			return l, accessMissed, nil
		}
	}
	if write && (opts.NoFetch || (fullLine && r.tr.BreakerOpen(clk.Now()))) {
		// Write-only full-line store: allocate without fetching. The
		// second arm is the degraded-mode fallback to local allocation:
		// while the breaker is open, a store that overwrites the whole
		// line need not stall on a fetch that cannot succeed.
		return l, accessMissed, nil
	}
	fetchStart := clk.Now()
	done, err := r.fetchLine(fetchStart, s, o, l)
	if err != nil {
		return nil, accessHit, err
	}
	clk.AdvanceTo(done)
	if r.trc != nil {
		r.trc.Span(fetchStart, done, "rt", "miss",
			trace.S("section", s.spec.Cache.Name), trace.S("obj", o.decl.Name))
		s.mMissLat.Observe(int64(done.Sub(fetchStart)))
	}
	return l, accessMissed, nil
}

// touchSpec retires a tag's speculative mark on its first demand touch:
// the prefetch was useful — and late if its bytes are still in flight at
// the touch (the caller's waitReady will stall on the tail). Reports
// whether a mark was retired, so the caller can feed stream-maintaining
// policies.
func (s *sectionRT) touchSpec(clk *sim.Clock, tag uint64) bool {
	if !s.specul[tag] {
		return false
	}
	delete(s.specul, tag)
	s.pf.Useful++
	s.mPfUseful.Inc()
	if ready, ok := s.inflight[tag]; ok && ready > clk.Now() {
		s.pf.Late++
	}
	return true
}

// evictSpec retires a tag's speculative mark on eviction or drop: the line
// was fetched but never touched.
func (s *sectionRT) evictSpec(tag uint64) {
	if s.specul[tag] {
		delete(s.specul, tag)
		s.pf.Useless++
		s.mPfUseless.Inc()
	}
}

// waitReady blocks until an in-flight prefetch of tag lands.
func (r *Runtime) waitReady(clk *sim.Clock, s *sectionRT, tag uint64) {
	if ready, ok := s.inflight[tag]; ok {
		clk.AdvanceTo(ready)
		delete(s.inflight, tag)
	}
}

// retireVictim parks a dirty victim in the section's write-back queue (or
// writes it back immediately when the queue is disabled) and clears its
// in-flight state.
func (r *Runtime) retireVictim(clk *sim.Clock, s *sectionRT, o *objectRT, v cache.Victim) error {
	if v.Data == nil {
		return nil
	}
	s.mEvict.Inc()
	r.bumpTid(s, &s.tidEvicts, &s.mTidEvict, "evict")
	delete(s.inflight, v.Tag)
	s.evictSpec(v.Tag)
	if !v.Dirty {
		// A clean line leaves far memory untouched; its snapshot dies with
		// it so the map stays bounded by the cache size.
		if s.snaps != nil {
			delete(s.snaps, v.Tag)
		}
		return nil
	}
	return r.wbqEnqueue(clk, s, o, v.Tag, v.Data)
}

// setCodec installs a wire codec on the timed data path (the single
// transport or every cluster link). The runtime flips it around each
// operation, so the codec is a property of the section or swap pool, not
// of the link — one link serves compressed and raw sections side by side.
// When nothing compresses, setCodec is never called and the transport's
// zero-cost None path carries all traffic untouched.
func (r *Runtime) setCodec(id codec.ID) {
	if r.trT != nil {
		r.trT.SetWireCodec(id)
	} else if r.pool != nil {
		r.pool.SetWireCodec(id)
	}
}

// snapshotLine records the line's just-fetched bytes as the delta
// write-back base. Selective objects are excluded: a selective fetch fills
// only field ranges, so the rest of l.Data is not far memory's content.
func snapshotLine(s *sectionRT, o *objectRT, l *cache.Line) {
	if s.snaps == nil || (o != nil && len(o.selFields) > 0) {
		return
	}
	s.snaps[l.Tag] = append([]byte(nil), l.Data...)
}

// fetchLine pulls the line's bytes from far memory — whole line one-sided,
// or only the selective field ranges two-sided (§4.5, §4.7).
func (r *Runtime) fetchLine(now sim.Time, s *sectionRT, o *objectRT, l *cache.Line) (sim.Time, error) {
	if s.spec.Compress {
		r.setCodec(codec.ByteRun)
		defer r.setCodec(codec.None)
	}
	if len(o.selFields) == 0 {
		done, err := r.tr.ReadOneSided(now, l.Tag, l.Data)
		if err == nil {
			snapshotLine(s, o, l)
		}
		return done, err
	}
	addrs, sizes, offs := r.selectivePieces(o, l.Tag, len(l.Data))
	data, done, err := r.tr.GatherTwoSided(now, addrs, sizes)
	if err != nil {
		return now, err
	}
	pos := 0
	for i, off := range offs {
		copy(l.Data[off:off+sizes[i]], data[pos:pos+sizes[i]])
		pos += sizes[i]
	}
	return done, nil
}

// writebackLine pushes a dirty line to far memory (whole line one-sided or
// selective ranges two-sided).
func (r *Runtime) writebackLine(now sim.Time, o *objectRT, tag uint64, data []byte) (sim.Time, error) {
	if o != nil && o.place.Kind == PlaceSection && r.secs[o.place.Section].spec.Compress {
		r.setCodec(codec.ByteRun)
		defer r.setCodec(codec.None)
	}
	if o == nil || o.place.Kind != PlaceSection || len(o.selFields) == 0 {
		return r.tr.WriteOneSided(now, tag, data)
	}
	addrs, sizes, offs := r.selectivePieces(o, tag, len(data))
	pieces := make([][]byte, len(addrs))
	for i := range addrs {
		pieces[i] = data[offs[i] : offs[i]+sizes[i]]
	}
	return r.tr.ScatterTwoSided(now, addrs, pieces)
}

// writebackPatch ships only the changed ranges of a dirty line — the delta
// write-back path. Each range travels as a raw sub-range piece of one
// vectored write: raw bytes at sub-line addresses, so the transport's
// degraded-mode overlay merges patches with its ordinary non-overlap
// machinery and a queued patch needs no special expansion.
func (r *Runtime) writebackPatch(now sim.Time, s *sectionRT, tag uint64, data []byte, ranges []codec.Range) (sim.Time, error) {
	if s.spec.Compress {
		r.setCodec(codec.ByteRun)
		defer r.setCodec(codec.None)
	}
	addrs := make([]uint64, len(ranges))
	pieces := make([][]byte, len(ranges))
	for i, rg := range ranges {
		addrs[i] = tag + uint64(rg.Off)
		pieces[i] = data[rg.Off : rg.Off+rg.Len]
	}
	return r.tr.ScatterWrite(now, addrs, pieces)
}

// selectivePieces computes the (far address, size, line offset) triples of
// the selective fields of every element overlapping the line [tag,
// tag+lineBytes).
func (r *Runtime) selectivePieces(o *objectRT, tag uint64, lineBytes int) (addrs []uint64, sizes []int, offs []int) {
	eb := uint64(o.decl.ElemBytes)
	end := tag + uint64(lineBytes)
	objEnd := o.farBase + uint64(o.decl.SizeBytes())
	if end > objEnd {
		end = objEnd
	}
	var firstElem int64
	if tag > o.farBase {
		firstElem = int64((tag - o.farBase) / eb)
	}
	for e := firstElem; ; e++ {
		elemBase := o.farBase + uint64(e)*eb
		if elemBase >= end || e >= o.decl.Count {
			break
		}
		for _, f := range o.selFields {
			fa := elemBase + uint64(f.Offset)
			fe := fa + uint64(f.Bytes)
			if fe <= tag || fa >= end {
				continue
			}
			// Clip to the line.
			if fa < tag {
				fa = tag
			}
			if fe > end {
				fe = end
			}
			addrs = append(addrs, fa)
			sizes = append(sizes, int(fe-fa))
			offs = append(offs, int(fa-tag))
		}
	}
	return addrs, sizes, offs
}
