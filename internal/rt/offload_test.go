package rt

import (
	"bytes"
	"testing"

	"mira/internal/sim"
)

func TestRemoteAccessRoundtrip(t *testing.T) {
	r, _ := mkRuntime(t, nil)
	w := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := r.RemoteAccess(sim.NewClock(0), "items", 3, fld(8, 8), w, true); err != nil {
		t.Fatal(err)
	}
	g := make([]byte, 8)
	if err := r.RemoteAccess(sim.NewClock(0), "items", 3, fld(8, 8), g, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatal("remote access roundtrip mismatch")
	}
	// Remote writes go straight to far memory: a local dump must see
	// them without any flush.
	dump, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump[3*64+8:3*64+16], w) {
		t.Fatal("remote write not visible in far memory")
	}
}

func TestRemoteAccessBounds(t *testing.T) {
	r, _ := mkRuntime(t, nil)
	if err := r.RemoteAccess(sim.NewClock(0), "items", 999, fld(0, 8), make([]byte, 8), false); err == nil {
		t.Fatal("out-of-range remote access accepted")
	}
	if err := r.RemoteAccess(sim.NewClock(0), "ghost", 0, fld(0, 8), make([]byte, 8), false); err == nil {
		t.Fatal("unknown object accepted")
	}
}

func TestRemoteBulkRoundtrip(t *testing.T) {
	r, _ := mkRuntime(t, nil)
	w := make([]byte, 64*4)
	for i := range w {
		w[i] = byte(i)
	}
	if err := r.RemoteBulk(sim.NewClock(0), "items", 2, w, true); err != nil {
		t.Fatal(err)
	}
	g := make([]byte, 64*4)
	if err := r.RemoteBulk(sim.NewClock(0), "items", 2, g, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatal("remote bulk roundtrip mismatch")
	}
	if err := r.RemoteBulk(sim.NewClock(0), "items", 127, make([]byte, 128), false); err == nil {
		t.Fatal("overrunning remote bulk accepted")
	}
}

func TestOffloadTransferCharges(t *testing.T) {
	r, _ := mkRuntime(t, nil)
	clk := sim.NewClock(0)
	r.OffloadTransfer(clk, 16, 8, 100*sim.Microsecond)
	// Two two-sided messages plus the slowdown-scaled compute.
	min := 2*r.cfg.Net.TwoSidedRTT + sim.Duration(float64(100*sim.Microsecond)*r.CPUSlowdown())
	if clk.Now().Sub(0) < min {
		t.Fatalf("offload charged %v, expected at least %v", clk.Now().Sub(0), min)
	}
}

func TestCPUSlowdownExposed(t *testing.T) {
	r, _ := mkRuntime(t, nil)
	if r.CPUSlowdown() != 1 {
		t.Fatalf("slowdown %v, want 1 (test node)", r.CPUSlowdown())
	}
}

func TestReleaseDropsAndFlushesAsync(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	w := []byte{5, 5, 5, 5, 5, 5, 5, 5}
	_ = r.Access(clk, "items", 4, fld(0, 8), w, true, AccessOpts{})
	missesBefore := r.SectionStats(0).Misses
	before := clk.Now()
	if err := r.Release(clk, "items"); err != nil {
		t.Fatal(err)
	}
	// Release is asynchronous: only posting costs on the issuing clock.
	if clk.Now().Sub(before) > 10*sim.Microsecond {
		t.Fatalf("release blocked for %v", clk.Now().Sub(before))
	}
	r.Fence(clk)
	dump, _ := r.DumpObject("items")
	if !bytes.Equal(dump[4*64:4*64+8], w) {
		t.Fatal("released dirty line lost")
	}
	// Line must be gone: a re-access misses.
	_ = r.Access(clk, "items", 4, fld(0, 8), make([]byte, 8), false, AccessOpts{})
	if r.SectionStats(0).Misses != missesBefore+1 {
		t.Fatal("line survived release")
	}
}

func TestReleaseSwapAndLocalAreNoops(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	if err := r.Release(clk, "vec"); err != nil { // swap-placed
		t.Fatal(err)
	}
	if err := r.Release(clk, "ghost"); err == nil {
		t.Fatal("release of unknown object accepted")
	}
}

func TestSettleAsyncClearsInflight(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	_ = r.Prefetch(clk, "items", 0, fld(0, 8))
	r.SettleAsync()
	// A fresh clock's access must not wait on the old frame's
	// completion instant.
	clk2 := sim.NewClock(0)
	_ = r.Access(clk2, "items", 0, fld(0, 8), make([]byte, 8), false, AccessOpts{})
	if clk2.Now() > sim.Time(sim.Microsecond) {
		t.Fatalf("settled prefetch still waited: %v", clk2.Now())
	}
}
