package rt

// LocalAllocator is the compute-node half of remotable.alloc (§5.2.1): it
// buffers address ranges obtained from the remote allocator and serves
// allocations from the buffer, asking the far node for more space only when
// the buffer runs dry — the malloc-over-mmap split the paper describes.
type LocalAllocator struct {
	// refill obtains a fresh range of at least n bytes from the remote
	// allocator, returning its base address.
	refill func(n uint64) (uint64, error)
	// chunk is the granularity of remote requests.
	chunk uint64
	// buffered ranges, consumed front to back.
	ranges []localRange
	// remoteCalls counts refills, to demonstrate the buffering works.
	remoteCalls int
}

type localRange struct {
	base uint64
	size uint64
}

// NewLocalAllocator builds a buffering allocator over the remote refill
// function. chunk is the minimum remote request size.
func NewLocalAllocator(chunk uint64, refill func(n uint64) (uint64, error)) *LocalAllocator {
	if chunk == 0 {
		chunk = 1 << 20
	}
	return &LocalAllocator{refill: refill, chunk: chunk}
}

// Alloc returns a far-memory address range of n bytes.
func (a *LocalAllocator) Alloc(n uint64) (uint64, error) {
	n = (n + 7) &^ 7
	for i := range a.ranges {
		if a.ranges[i].size >= n {
			addr := a.ranges[i].base
			a.ranges[i].base += n
			a.ranges[i].size -= n
			if a.ranges[i].size == 0 {
				a.ranges = append(a.ranges[:i], a.ranges[i+1:]...)
			}
			return addr, nil
		}
	}
	req := n
	if req < a.chunk {
		req = a.chunk
	}
	base, err := a.refill(req)
	if err != nil {
		return 0, err
	}
	a.remoteCalls++
	a.ranges = append(a.ranges, localRange{base: base + n, size: req - n})
	return base, nil
}

// RemoteCalls reports how many times the remote allocator was consulted.
func (a *LocalAllocator) RemoteCalls() int { return a.remoteCalls }

// BufferedBytes reports how much far address space sits in the local
// buffer.
func (a *LocalAllocator) BufferedBytes() uint64 {
	var total uint64
	for _, r := range a.ranges {
		total += r.size
	}
	return total
}
