package rt

import (
	"errors"
	"fmt"
	"sort"

	"mira/internal/cache"
	"mira/internal/codec"
	"mira/internal/ir"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/transport"
)

// prefetchFailed reports a fetch failure a prefetch may swallow: prefetch is
// advisory, so transient trouble (or an open breaker) degrades to "no
// prefetch" instead of aborting the program.
func prefetchFailed(err error) bool {
	return errors.Is(err, transport.ErrFarUnavailable) || transport.IsTransient(err)
}

// Prefetch starts an asynchronous fetch of the line holding obj[elem].field
// (§4.5 adaptive prefetching). The issuing thread pays only the posting
// cost; a later access to the line waits for the remainder, if any.
func (r *Runtime) Prefetch(clk *sim.Clock, name string, elem int64, field ir.Field) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("rt: prefetch of unknown object %q", name)
	}
	if elem < 0 || elem >= o.decl.Count {
		// Speculative prefetch past the end: drop silently, but count it —
		// dropped proposals are the denominator policy accuracy needs.
		if o.place.Kind == PlaceSection {
			s := r.secs[o.place.Section]
			s.pf.Dropped++
			s.mPfDropped.Inc()
		}
		return nil
	}
	switch o.place.Kind {
	case PlaceLocal:
		return nil
	case PlaceSwap:
		if r.cfg.Hybrid && r.swapC != nil {
			// Hybrid plane: compiled prefetch statements survive a
			// migration to the paged plane as page advisories, so the
			// program's hints keep working on either side of a switch.
			addr := o.farBase + uint64(elem)*uint64(o.decl.ElemBytes) + uint64(field.Offset)
			return r.swapPrefetchFars(clk, []uint64{addr})
		}
		return fmt.Errorf("rt: prefetch into swap section for %q (compiler bug: swap objects use the page prefetcher)", name)
	}
	s := r.secs[o.place.Section]
	addr := o.farBase + uint64(elem)*uint64(o.decl.ElemBytes) + uint64(field.Offset)
	tag := cache.AlignDown(addr, s.spec.Cache.LineBytes)
	if _, resident := s.sec.Peek(addr); resident {
		return nil
	}
	if _, inflight := s.inflight[tag]; inflight {
		return nil
	}
	if r.recoverFromWbq(clk, s, o, addr, tag) {
		return nil
	}
	clk.Advance(r.cfg.Net.PerMessageOverhead)
	l, victim := s.sec.Reserve(addr)
	if err := r.retireVictim(clk, s, o, victim); err != nil {
		return err
	}
	post := clk.Now()
	done, err := r.fetchLine(post, s, o, l)
	if err != nil {
		if prefetchFailed(err) {
			s.sec.Drop(tag)
			delete(s.inflight, tag)
			s.pf.Dropped++
			s.mPfDropped.Inc()
			return nil
		}
		return err
	}
	s.inflight[tag] = done
	s.specul[tag] = true
	s.pf.Issued++
	s.mPfIssued.Inc()
	if r.trc != nil {
		r.trc.Span(post, done, "rt", "prefetch", trace.S("obj", name))
	}
	return nil
}

// recoverFromWbq serves a prefetch target from the section's write-back
// queue — the line was evicted but its write-back has not drained, so the
// queued copy is the newest data and no network is needed. Reports whether
// the line was recovered.
func (r *Runtime) recoverFromWbq(clk *sim.Clock, s *sectionRT, o *objectRT, addr, tag uint64) bool {
	if s.wbq == nil {
		return false
	}
	e, ok := s.wbq.take(tag)
	if !ok {
		return false
	}
	r.wbqStats.Hits++
	l, victim := s.sec.Reserve(addr)
	if err := r.retireVictim(clk, s, o, victim); err != nil {
		// Re-park the recovered line; the caller's prefetch is advisory.
		s.sec.Drop(tag)
		s.wbq.add(tag, e.data, e.o, e.ranges)
		return true
	}
	copy(l.Data, e.data)
	l.Dirty = true // newest copy still lives only locally
	return true
}

// BatchEntry names one piece of a batched prefetch.
type BatchEntry struct {
	Obj   string
	Elem  int64
	Field ir.Field
}

// PrefetchBatch fetches several lines — possibly of different objects and
// sections — in a single doorbell-batched chain of one-sided reads (§4.5
// data access batching). The issuing thread pays one posting cost for the
// whole chain; each line is tagged in-flight with its own arrival instant
// (the reply streams pieces in request order), so a later access waits only
// for its own line, not for the chain's tail.
func (r *Runtime) PrefetchBatch(clk *sim.Clock, entries []BatchEntry) error {
	type piece struct {
		s    *sectionRT
		l    *cache.Line
		tag  uint64
		snap bool // record a delta-base snapshot once the bytes land
	}
	var addrs []uint64
	var sizes []int
	var pieces []piece
	var swapFars []uint64
	allCompress := true
	for _, e := range entries {
		o, ok := r.objs[e.Obj]
		if !ok {
			return fmt.Errorf("rt: batch prefetch of unknown object %q", e.Obj)
		}
		if o.place.Kind != PlaceSection {
			if o.place.Kind == PlaceSwap && r.cfg.Hybrid && r.swapC != nil &&
				e.Elem >= 0 && e.Elem < o.decl.Count {
				// Hybrid plane: batch entries whose object lives on the
				// paged plane become one page advisory batch below.
				swapFars = append(swapFars,
					o.farBase+uint64(e.Elem)*uint64(o.decl.ElemBytes)+uint64(e.Field.Offset))
			}
			continue
		}
		if e.Elem < 0 || e.Elem >= o.decl.Count {
			s := r.secs[o.place.Section]
			s.pf.Dropped++
			s.mPfDropped.Inc()
			continue
		}
		s := r.secs[o.place.Section]
		addr := o.farBase + uint64(e.Elem)*uint64(o.decl.ElemBytes) + uint64(e.Field.Offset)
		tag := cache.AlignDown(addr, s.spec.Cache.LineBytes)
		if _, resident := s.sec.Peek(addr); resident {
			continue
		}
		if _, inflight := s.inflight[tag]; inflight {
			continue
		}
		if r.recoverFromWbq(clk, s, o, addr, tag) {
			continue
		}
		l, victim := s.sec.Reserve(addr)
		if err := r.retireVictim(clk, s, o, victim); err != nil {
			return err
		}
		addrs = append(addrs, tag)
		sizes = append(sizes, len(l.Data))
		pieces = append(pieces, piece{s: s, l: l, tag: tag,
			snap: s.snaps != nil && len(o.selFields) == 0})
		if !s.spec.Compress {
			allCompress = false
		}
	}
	if len(swapFars) > 0 {
		if err := r.swapPrefetchFars(clk, swapFars); err != nil {
			return err
		}
	}
	if len(addrs) == 0 {
		return nil
	}
	clk.Advance(r.cfg.Net.VectoredPostCost(len(addrs)))
	post := clk.Now()
	// One chain carries every piece, so the codec is all-or-nothing: only a
	// batch entirely of compressed sections ships compressed.
	if allCompress {
		r.setCodec(codec.ByteRun)
		defer r.setCodec(codec.None)
	}
	data, done, err := r.tr.GatherOneSided(post, addrs, sizes)
	if err != nil {
		if prefetchFailed(err) {
			for _, p := range pieces {
				if cur, ok := p.s.sec.Peek(p.tag); ok && cur == p.l {
					p.s.sec.Drop(p.tag)
				}
				p.s.pf.Dropped++
				p.s.mPfDropped.Inc()
			}
			return nil
		}
		return err
	}
	// Per-line arrival: piece i is ready as soon as its own bytes are off
	// the wire — the chain's completion minus the trailing pieces' wire
	// time.
	readies := make([]sim.Time, len(pieces))
	suffix := 0
	for i := len(pieces) - 1; i >= 0; i-- {
		readies[i] = done.Add(-r.cfg.Net.WireTime(suffix))
		suffix += sizes[i]
	}
	pos := 0
	for i, p := range pieces {
		// A line evicted by a later Reserve in this same batch (set
		// conflict or capacity pressure) has a new tenant: copying into it
		// would corrupt that tenant, and tagging it in-flight would leave a
		// stale entry suppressing every future prefetch of the line. Skip
		// pieces whose reserved line is no longer theirs.
		if cur, ok := p.s.sec.Peek(p.tag); ok && cur == p.l && p.l.Tag == p.tag {
			copy(p.l.Data, data[pos:pos+sizes[i]])
			if p.snap {
				p.s.snaps[p.tag] = append([]byte(nil), p.l.Data...)
			}
			p.s.inflight[p.tag] = readies[i]
			p.s.specul[p.tag] = true
			p.s.pf.Issued++
			p.s.mPfIssued.Inc()
		} else {
			p.s.pf.Dropped++
			p.s.mPfDropped.Inc()
		}
		pos += sizes[i]
	}
	if r.trc != nil {
		r.trc.Span(post, done, "rt", "prefetch.batch", trace.I("lines", int64(len(addrs))))
	}
	return nil
}

// EvictHint marks obj[elem]'s line evictable and flushes it asynchronously
// if dirty (§4.5 eviction hints).
func (r *Runtime) EvictHint(clk *sim.Clock, name string, elem int64) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("rt: evict hint for unknown object %q", name)
	}
	if o.place.Kind != PlaceSection || elem < 0 || elem >= o.decl.Count {
		return nil
	}
	s := r.secs[o.place.Section]
	addr := o.farBase + uint64(elem)*uint64(o.decl.ElemBytes)
	l, resident := s.sec.Peek(addr)
	if !resident {
		return nil
	}
	s.sec.MarkEvictable(addr)
	if l.Dirty {
		if s.wbq == nil {
			clk.Advance(r.cfg.Net.PerMessageOverhead)
		}
		if err := r.wbqEnqueue(clk, s, o, l.Tag, l.Data); err != nil {
			return err
		}
		l.Dirty = false
	}
	return nil
}

// Pin adjusts the don't-evict count of obj[elem]'s line (§4.6 shared
// sections). Pinning an absent line is a no-op.
func (r *Runtime) Pin(name string, elem int64, delta int) {
	o, ok := r.objs[name]
	if !ok || o.place.Kind != PlaceSection {
		return
	}
	s := r.secs[o.place.Section]
	addr := o.farBase + uint64(elem)*uint64(o.decl.ElemBytes)
	s.sec.Pin(addr, delta)
}

// SettleAsync marks all in-flight prefetches and write-backs complete
// without advancing any clock — a harness utility for tests that reuse a
// runtime across independent timing frames. (The multithreaded drivers no
// longer need it: interleaved threads share one virtual-time frame, so
// asynchronous completion instants remain meaningful across threads.)
func (r *Runtime) SettleAsync() {
	for _, s := range r.secs {
		for tag := range s.inflight {
			delete(s.inflight, tag)
		}
	}
	if r.swapC != nil {
		r.swapC.SettleAsync()
	}
	r.lastFlush = 0
}

// Fence blocks until every in-flight prefetch and asynchronous write-back
// has completed — including lines still parked in the write-back queues,
// which are drained here (a drain failure re-parks them and is surfaced by
// the next flush, so Fence itself stays infallible).
func (r *Runtime) Fence(clk *sim.Clock) {
	start := clk.Now()
	for _, s := range r.secs {
		_, _ = r.drainWbq(clk, s)
	}
	latest := r.lastFlush
	for _, s := range r.secs {
		for _, t := range s.inflight {
			if t > latest {
				latest = t
			}
		}
	}
	clk.AdvanceTo(latest)
	r.trc.Span(start, clk.Now(), "rt", "fence")
}

// FlushObject writes back and drops every cached line of the object,
// blocking until far memory is up to date. The compiler emits this before
// offloaded calls that read the object (§4.8) and at section lifetime ends.
func (r *Runtime) FlushObject(clk *sim.Clock, name string) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("rt: flush of unknown object %q", name)
	}
	switch o.place.Kind {
	case PlaceLocal:
		return nil
	case PlaceSwap:
		if r.cfg.SwapCompress {
			r.setCodec(codec.ByteRun)
			defer r.setCodec(codec.None)
		}
		return r.swapC.FlushAll(clk)
	}
	start0 := clk.Now()
	s := r.secs[o.place.Section]
	lb := uint64(s.spec.Cache.LineBytes)
	start := cache.AlignDown(o.farBase, int(lb))
	end := o.farBase + uint64(o.decl.SizeBytes())
	var tags []uint64
	s.sec.ForEachResident(func(l *cache.Line) {
		if l.Tag >= start && l.Tag < end {
			tags = append(tags, l.Tag)
		}
	})
	last := clk.Now()
	for _, tag := range tags {
		v, ok := s.sec.Drop(tag)
		if !ok {
			continue
		}
		delete(s.inflight, tag)
		s.evictSpec(tag)
		if !v.Dirty {
			if s.snaps != nil {
				delete(s.snaps, tag)
			}
			continue
		}
		if s.wbq != nil {
			// Park the line so the drain below pushes the whole flush as
			// one coalesced vectored write.
			if err := r.wbqEnqueue(clk, s, o, v.Tag, v.Data); err != nil {
				return err
			}
			continue
		}
		ranges, skip := r.deltaPlan(clk, s, o, v.Tag, v.Data)
		if skip {
			continue
		}
		var done sim.Time
		var err error
		if ranges != nil {
			done, err = r.writebackPatch(clk.Now(), s, v.Tag, v.Data, ranges)
		} else {
			done, err = r.writebackLine(clk.Now(), o, v.Tag, v.Data)
		}
		if err != nil {
			return err
		}
		if done > last {
			last = done
		}
	}
	// A flush is a synchronization point: everything parked in the
	// section's queue — this object's lines and earlier evictions — must
	// reach far memory before the flush returns.
	done, err := r.drainWbq(clk, s)
	if err != nil {
		return err
	}
	if done > last {
		last = done
	}
	clk.AdvanceTo(last)
	if r.trc != nil {
		r.trc.Span(start0, clk.Now(), "rt", "flush.obj", trace.S("obj", name))
	}
	return nil
}

// Release ends an object's cached lifetime (§4.1): every line is dropped;
// dirty lines are written back asynchronously (the issuing thread pays only
// posting costs). Swap- and local-placed objects are left alone — the swap
// section has its own global reclamation.
func (r *Runtime) Release(clk *sim.Clock, name string) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("rt: release of unknown object %q", name)
	}
	if o.place.Kind != PlaceSection {
		return nil
	}
	s := r.secs[o.place.Section]
	lb := uint64(s.spec.Cache.LineBytes)
	start := cache.AlignDown(o.farBase, int(lb))
	end := o.farBase + uint64(o.decl.SizeBytes())
	var tags []uint64
	s.sec.ForEachResident(func(l *cache.Line) {
		if l.Tag >= start && l.Tag < end {
			tags = append(tags, l.Tag)
		}
	})
	for _, tag := range tags {
		v, ok := s.sec.Drop(tag)
		if !ok {
			continue
		}
		delete(s.inflight, tag)
		s.evictSpec(tag)
		if v.Dirty {
			if s.wbq == nil {
				clk.Advance(r.cfg.Net.PerMessageOverhead)
			}
			if err := r.wbqEnqueue(clk, s, o, v.Tag, v.Data); err != nil {
				return err
			}
		} else if s.snaps != nil {
			delete(s.snaps, tag)
		}
	}
	return nil
}

// FlushAll flushes every section and the swap pool; used at program end so
// DumpObject sees final data, and by multithreaded barriers.
func (r *Runtime) FlushAll(clk *sim.Clock) error {
	flushStart := clk.Now()
	// Flush in name order: write-back order decides how transfers queue on
	// the shared link, and map iteration order would make final sim times
	// run-dependent.
	names := make([]string, 0, len(r.objs))
	for name, o := range r.objs {
		if o.place.Kind == PlaceSection {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := r.FlushObject(clk, name); err != nil {
			return err
		}
	}
	if r.swapC != nil {
		if r.cfg.SwapCompress {
			r.setCodec(codec.ByteRun)
		}
		err := r.swapC.FlushAll(clk)
		if r.cfg.SwapCompress {
			r.setCodec(codec.None)
		}
		if err != nil {
			return err
		}
	}
	// Ordering under faults: the per-section write-back queues drain first
	// (their lines may land in the transport's degraded-mode overlay), and
	// only then is the overlay flushed — so everything reaches far memory
	// before DumpObject bypasses the cache to read it.
	if _, err := r.drainAllWbq(clk); err != nil {
		return err
	}
	done, err := r.tr.Flush(clk.Now())
	if err != nil {
		return err
	}
	clk.AdvanceTo(done)
	r.Fence(clk)
	r.trc.Span(flushStart, clk.Now(), "rt", "flush.all")
	return nil
}

// ReleaseSection ends a section's lifetime (§4.1: "we end a section as soon
// as its lifetime in the program ends"): dirty lines are flushed
// asynchronously and every line is dropped, freeing the space for live
// sections. (Static sizing already accounts for overlap via the ILP; the
// runtime release keeps the model honest and the stats meaningful.)
func (r *Runtime) ReleaseSection(clk *sim.Clock, idx int) error {
	if idx < 0 || idx >= len(r.secs) {
		return fmt.Errorf("rt: release of section %d of %d", idx, len(r.secs))
	}
	s := r.secs[idx]
	var tags []uint64
	s.sec.ForEachResident(func(l *cache.Line) { tags = append(tags, l.Tag) })
	for _, tag := range tags {
		v, ok := s.sec.Drop(tag)
		if !ok {
			continue
		}
		delete(s.inflight, tag)
		s.evictSpec(tag)
		if v.Dirty {
			// Sections serve objects with disjoint far ranges, so
			// resolving the owner by tag is unambiguous.
			o := r.ownerOf(tag)
			if o == nil {
				return fmt.Errorf("rt: dirty line %#x has no owning object", tag)
			}
			if err := r.wbqEnqueue(clk, s, o, v.Tag, v.Data); err != nil {
				return err
			}
		} else if s.snaps != nil {
			delete(s.snaps, tag)
		}
	}
	return nil
}

// rebuildOwnerIndex rebuilds the farBase-sorted index of section-placed
// objects that ownerOf searches. Bind calls it after placement; tests that
// relocate objects directly must call it again.
func (r *Runtime) rebuildOwnerIndex() {
	r.byFar = r.byFar[:0]
	for _, o := range r.objs {
		if o.place.Kind == PlaceSection {
			r.byFar = append(r.byFar, o)
		}
	}
	sort.Slice(r.byFar, func(i, j int) bool {
		if r.byFar[i].farBase != r.byFar[j].farBase {
			return r.byFar[i].farBase < r.byFar[j].farBase
		}
		return r.byFar[i].decl.Name < r.byFar[j].decl.Name
	})
}

// ownerOf finds the section-placed object whose allocation covers a far
// address. An object owns [farBase, farBase+size), and additionally claims
// the aligned-down head of its first line when farBase is not line-aligned —
// its dirty first line carries that tag. When that head overlaps the
// previous object's tail, exact containment wins: resolution is a binary
// search over the farBase-sorted index, so the answer never depends on map
// iteration order.
func (r *Runtime) ownerOf(far uint64) *objectRT {
	i := sort.Search(len(r.byFar), func(i int) bool { return r.byFar[i].farBase > far })
	if i > 0 {
		o := r.byFar[i-1]
		if far < o.farBase+uint64(o.decl.SizeBytes()) {
			return o
		}
	}
	if i < len(r.byFar) {
		o := r.byFar[i]
		if far >= cache.AlignDown(o.farBase, r.secs[o.place.Section].spec.Cache.LineBytes) {
			return o
		}
	}
	return nil
}
