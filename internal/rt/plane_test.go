package rt

import (
	"bytes"
	"testing"

	"mira/internal/cache"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/plane"
	"mira/internal/plane/planetest"
	"mira/internal/prefetch"
	"mira/internal/sim"
	"mira/internal/trace"
)

// TestLinePlaneConformance runs the shared plane suite against a cache
// section exposed as a DataPlane. The object is 1000 bytes over 64-byte
// lines so the tail-unit behavior is exercised.
func TestLinePlaneConformance(t *testing.T) {
	planetest.Run(t, "rt.line", func(t *testing.T) *planetest.Harness {
		t.Helper()
		b := ir.NewBuilder("planetest")
		b.Object("grid", 8, 125, ir.F("v", 0, 8))
		b.Func("main")
		cfg := Config{
			Hybrid:      true,
			LocalBudget: 1 << 20,
			Sections: []SectionSpec{{
				Cache: cache.Config{Name: "grid", Structure: cache.SetAssoc, Ways: 4, LineBytes: 64, SizeBytes: 2 << 10},
			}},
			Placements: map[string]Placement{"grid": {Kind: PlaceSection, Section: 0}},
		}
		node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 26, CPUSlowdown: 1})
		r, err := New(cfg, node)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Bind(b.MustProgram()); err != nil {
			t.Fatal(err)
		}
		p, err := r.LinePlane(0)
		if err != nil {
			t.Fatal(err)
		}
		o := r.objs["grid"]
		return &planetest.Harness{P: p, Base: o.farBase, Length: o.decl.SizeBytes(), FarRead: node.Read}
	})
}

// TestPagePlaneConformanceViaRuntime runs the same suite against the paged
// plane as the runtime exposes it (hybrid layout, swap cache over the
// unified heap). The object is 4936 bytes so its last page is partial.
func TestPagePlaneConformanceViaRuntime(t *testing.T) {
	planetest.Run(t, "rt.page", func(t *testing.T) *planetest.Harness {
		t.Helper()
		b := ir.NewBuilder("planetest")
		b.Object("vec", 8, 617, ir.F("v", 0, 8))
		b.Func("main")
		cfg := Config{
			Hybrid:      true,
			LocalBudget: 1 << 20,
			SwapPool:    16 << 10,
			Placements:  map[string]Placement{"vec": {Kind: PlaceSwap}},
		}
		node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 26, CPUSlowdown: 1})
		r, err := New(cfg, node)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Bind(b.MustProgram()); err != nil {
			t.Fatal(err)
		}
		p := r.PagePlane()
		if p == nil {
			t.Fatal("PagePlane returned nil with a swap pool configured")
		}
		o := r.objs["vec"]
		return &planetest.Harness{P: p, Base: o.farBase, Length: o.decl.SizeBytes(), FarRead: node.Read}
	})
}

// mkHybridRuntime builds a hybrid-layout runtime over testProgram: items in
// section 0 (and migratable), vec in swap.
func mkHybridRuntime(t *testing.T) (*Runtime, *sim.Clock) {
	t.Helper()
	cfg := Config{
		Hybrid:      true,
		LocalBudget: 1 << 20,
		SwapPool:    64 << 10,
		Sections: []SectionSpec{{
			Cache: cache.Config{Name: "items", Structure: cache.SetAssoc, Ways: 4, LineBytes: 128, SizeBytes: 16 << 10},
		}},
		Placements: map[string]Placement{
			"items": {Kind: PlaceSection, Section: 0},
			"vec":   {Kind: PlaceSwap},
		},
	}
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 26, CPUSlowdown: 1})
	r, err := New(cfg, node)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(testProgram()); err != nil {
		t.Fatal(err)
	}
	return r, sim.NewClock(0)
}

// TestHybridAllSwapMatchesClassicLayout pins the bindHybrid invariant the
// pure-page benchmark arm relies on: an all-swap program lays out at the
// same offsets under Hybrid as under the classic Bind.
func TestHybridAllSwapMatchesClassicLayout(t *testing.T) {
	bases := make([]uint64, 2)
	for i, hybrid := range []bool{false, true} {
		cfg := Config{
			LocalBudget: 1 << 20,
			SwapPool:    64 << 10,
			Hybrid:      hybrid,
			Placements: map[string]Placement{
				"items": {Kind: PlaceSwap},
				"vec":   {Kind: PlaceSwap},
			},
		}
		node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 26, CPUSlowdown: 1})
		r, err := New(cfg, node)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Bind(testProgram()); err != nil {
			t.Fatal(err)
		}
		if r.swapC == nil {
			t.Fatal("no swap cache")
		}
		bases[i] = r.objs["vec"].farBase - r.objs["items"].farBase
		if got, want := r.swapC.Base(), r.objs["items"].farBase; got != want {
			t.Fatalf("hybrid=%v: swap base %#x, want first object base %#x", hybrid, got, want)
		}
	}
	if bases[0] != bases[1] {
		t.Fatalf("relative layout differs: classic %#x vs hybrid %#x", bases[0], bases[1])
	}
}

// migrationScript drives one full line->page->line tenure cycle with
// interleaved accesses, maintaining a native mirror of items as the oracle.
// It returns elapsed sim time, the trace bytes, and the final far image.
func migrationScript(t *testing.T) (sim.Time, []byte, []byte) {
	t.Helper()
	r, clk := mkHybridRuntime(t)
	tr := trace.New()
	r.SetTrace(tr)

	mirror := make([]byte, 64*128) // items: 128 elements x 64 bytes
	rd := func(elem int64) {
		got := make([]byte, 8)
		if err := r.Access(clk, "items", elem, fld(0, 8), got, false, AccessOpts{}); err != nil {
			t.Fatalf("read items[%d]: %v", elem, err)
		}
		if want := mirror[elem*64 : elem*64+8]; !bytes.Equal(got, want) {
			t.Fatalf("items[%d] = %v, oracle %v", elem, got, want)
		}
	}
	wr := func(elem int64, seed byte) {
		buf := make([]byte, 8)
		for i := range buf {
			buf[i] = seed + byte(i)
		}
		if err := r.Access(clk, "items", elem, fld(0, 8), buf, true, AccessOpts{}); err != nil {
			t.Fatalf("write items[%d]: %v", elem, err)
		}
		copy(mirror[elem*64:], buf)
	}

	if k, ok := r.ObjectPlane("items"); !ok || k != plane.Line {
		t.Fatalf("items starts on %v, want line", k)
	}
	// Line tenure: dirty a few lines, leave them cached.
	for e := int64(0); e < 8; e++ {
		wr(e, byte(10+e))
	}
	rd(3)

	if err := r.MigrateObject(clk, "items", plane.Page); err != nil {
		t.Fatalf("migrate to page: %v", err)
	}
	if k, _ := r.ObjectPlane("items"); k != plane.Page {
		t.Fatalf("items on %v after migration, want page", k)
	}
	// Page tenure: the line tenure's dirty bytes must be visible, and new
	// writes land through the swap cache.
	rd(0)
	rd(7)
	for e := int64(4); e < 12; e++ {
		wr(e, byte(40+e))
	}
	// Migrating to the current plane is a no-op, in time and in state.
	before := clk.Now()
	if err := r.MigrateObject(clk, "items", plane.Page); err != nil {
		t.Fatalf("no-op migrate: %v", err)
	}
	if clk.Now() != before {
		t.Fatalf("no-op migration moved the clock")
	}

	if err := r.MigrateObject(clk, "items", plane.Line); err != nil {
		t.Fatalf("migrate back to line: %v", err)
	}
	if k, _ := r.ObjectPlane("items"); k != plane.Line {
		t.Fatal("items not back on the line plane")
	}
	// Line tenure again: page tenure's writes must be visible.
	rd(5)
	rd(11)
	wr(2, 99)

	if err := r.FlushAll(clk); err != nil {
		t.Fatalf("flush all: %v", err)
	}
	img, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, mirror) {
		t.Fatal("far image diverged from the native oracle after migrations")
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return clk.Now(), buf.Bytes(), img
}

// TestMigrationDeterminism replays the identical migration script twice:
// elapsed sim time, the full trace, and the far image must be
// byte-identical — the property BENCH replays and the CI A/B gate rely on.
func TestMigrationDeterminism(t *testing.T) {
	t1, trace1, img1 := migrationScript(t)
	t2, trace2, img2 := migrationScript(t)
	if t1 != t2 {
		t.Fatalf("elapsed time diverged: %v vs %v", t1, t2)
	}
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("trace bytes diverged across identical runs")
	}
	if !bytes.Equal(img1, img2) {
		t.Fatal("far image diverged across identical runs")
	}
}

func TestMigrateObjectErrors(t *testing.T) {
	// Non-hybrid layouts cannot migrate: pages are shared between objects.
	r, clk := mkRuntime(t, nil)
	if err := r.MigrateObject(clk, "items", plane.Page); err == nil {
		t.Fatal("migration allowed without the hybrid layout")
	}

	r, clk = mkHybridRuntime(t)
	if err := r.MigrateObject(clk, "nosuch", plane.Page); err == nil {
		t.Fatal("migration of unknown object did not error")
	}
	// vec has no home section: it can never move to the line plane.
	if err := r.MigrateObject(clk, "vec", plane.Line); err == nil {
		t.Fatal("migration of a sectionless object to the line plane did not error")
	}
	// ...but migrating it to the plane it is on stays a no-op.
	if err := r.MigrateObject(clk, "vec", plane.Page); err != nil {
		t.Fatalf("no-op migrate of swap object: %v", err)
	}
}

// TestSetSectionScaleRecapsPrefetchWindow is the regression test for the
// stale prefetch-window clamp: after an elastic shrink the programmed
// policy's in-flight window must re-clamp to half the live capacity, and a
// regrow must restore the configured window.
func TestSetSectionScaleRecapsPrefetchWindow(t *testing.T) {
	r, clk := mkRuntime(t, nil) // items section: 16 KiB / 128 B = 128 lines
	pol := prefetch.NewProgrammed([]int64{0, 1, 2, 3}, 60)
	if err := r.InstallSectionPolicy(0, pol); err != nil {
		t.Fatal(err)
	}
	if pol.Window() != 60 {
		t.Fatalf("window = %d before resize, want 60", pol.Window())
	}
	// Shrink to 32 lines: a 60-line window would thrash the cache; the
	// resize must re-clamp it to half the live capacity.
	if err := r.SetSectionScale(clk, 0.25); err != nil {
		t.Fatal(err)
	}
	if pol.Window() != 16 {
		t.Fatalf("window = %d after shrink to 32 lines, want 16", pol.Window())
	}
	// Regrow: the configured window fits again and must come back whole.
	if err := r.SetSectionScale(clk, 1.0); err != nil {
		t.Fatal(err)
	}
	if pol.Window() != 60 {
		t.Fatalf("window = %d after regrow, want 60", pol.Window())
	}
}
