package rt

import (
	"strconv"

	"mira/internal/trace"
)

// SetTrace attaches the deterministic tracing layer to the runtime and its
// whole data path: per-section cache metrics, the transport (or the cluster
// pool's per-node transports), and the swap cache. Call after Bind — the
// swap cache only exists then. A nil tracer leaves tracing disabled; every
// instrumentation site is nil-safe, so an un-traced runtime pays only nil
// checks.
func (r *Runtime) SetTrace(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	reg := tr.Registry()
	r.trc = tr.Buffer("rt")
	r.reg = reg
	for _, s := range r.secs {
		c := s.spec.Cache
		open := "{section=" + c.Name + ",structure=" + c.Structure.String() +
			",line=" + strconv.Itoa(c.LineBytes)
		lbl := open + "}"
		s.lblOpen = open
		s.mHit = reg.Counter("cache.hit" + lbl)
		s.mMiss = reg.Counter("cache.miss" + lbl)
		s.mEvict = reg.Counter("cache.evict" + lbl)
		s.mMissLat = reg.Histogram("cache.miss.latency_ns" + lbl)
		s.mPfIssued = reg.Counter("prefetch.issued" + lbl)
		s.mPfUseful = reg.Counter("prefetch.useful" + lbl)
		s.mPfUseless = reg.Counter("prefetch.useless" + lbl)
		s.mPfDropped = reg.Counter("prefetch.dropped" + lbl)
	}
	if r.trT != nil {
		r.trT.SetTrace(tr, "net")
	}
	if r.pool != nil {
		r.pool.SetTrace(tr)
	}
	if r.engine != nil {
		r.engine.SetTrace(tr)
	}
	if r.swapC != nil {
		r.swapC.SetTrace(tr)
	}
}

// bumpTid attributes one cache event (kind "hit"/"miss"/"evict") of
// section s to the active simulated thread: the plain per-tid slot always
// counts; the labeled trace counter (cache.<kind>{...,tid=N}) is created
// lazily on a tid's first event so untraced runs register nothing.
func (r *Runtime) bumpTid(s *sectionRT, counts *[]int64, metrics *[]*trace.Counter, kind string) {
	tid := r.activeTid
	for len(*counts) <= tid {
		*counts = append(*counts, 0)
	}
	(*counts)[tid]++
	if r.reg == nil {
		return
	}
	for len(*metrics) <= tid {
		*metrics = append(*metrics, nil)
	}
	if (*metrics)[tid] == nil {
		(*metrics)[tid] = r.reg.Counter("cache." + kind + s.lblOpen + ",tid=" + strconv.Itoa(tid) + "}")
	}
	(*metrics)[tid].Inc()
}
