package rt

import (
	"bytes"
	"testing"

	"mira/internal/cache"
	"mira/internal/faults"
	"mira/internal/sim"
	"mira/internal/transport"
)

// wbqRuntime builds a runtime whose items section has a small direct-mapped
// cache (8 lines of 128 B) so evictions are easy to force, with the
// write-back queue bounded at limit lines.
func wbqRuntime(t *testing.T, limit int) (*Runtime, *sim.Clock) {
	t.Helper()
	r, clk := mkRuntime(t, func(c *Config) {
		c.Sections[0].Cache = cache.Config{Name: "items", Structure: cache.Direct, LineBytes: 128, SizeBytes: 1 << 10}
		c.WritebackQueueLines = limit
	})
	return r, clk
}

func TestWbqReadYourWrites(t *testing.T) {
	r, clk := wbqRuntime(t, 16)
	w := []byte{9, 8, 7, 6, 5, 4, 3, 2}
	if err := r.Access(clk, "items", 3, fld(0, 8), w, true, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.EvictHint(clk, "items", 3); err != nil {
		t.Fatal(err)
	}
	// Evict the (evictable) line so the only copy of the write sits in the
	// write-back queue. items elems are 64 B, lines 128 B, 8 slots: elem 64
	// maps over elem 3's slot... direct slot of tag: (tag/128) % 8. Elem 3 is
	// tag 128 (slot 1); elem 16+2 = tag 1024+128 → slot 1 again.
	if err := r.Access(clk, "items", 18, fld(0, 8), make([]byte, 8), false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if got := r.WritebackQueueStats().Enqueued; got == 0 {
		t.Fatal("dirty victim did not enter the write-back queue")
	}
	msgsBefore := r.Link().Messages()
	g := make([]byte, 8)
	if err := r.Access(clk, "items", 3, fld(0, 8), g, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatalf("read-your-writes broken: got %x want %x", g, w)
	}
	if got := r.WritebackQueueStats().Hits; got != 1 {
		t.Fatalf("wbq hits = %d, want 1", got)
	}
	if r.Link().Messages() != msgsBefore {
		t.Fatal("read of a queued line went to the network")
	}
}

func TestWbqCoalescesAdjacentLinesIntoOnePiece(t *testing.T) {
	r, clk := wbqRuntime(t, 16)
	// Dirty four adjacent lines (elems 0,2,4,6 → tags 0,128,256,384) and
	// park them all via eviction hints.
	for _, e := range []int64{0, 2, 4, 6} {
		if err := r.Access(clk, "items", e, fld(0, 8), []byte{byte(e), 1, 2, 3, 4, 5, 6, 7}, true, AccessOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := r.EvictHint(clk, "items", e); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.WritebackQueueStats().Enqueued; got != 4 {
		t.Fatalf("enqueued = %d, want 4", got)
	}
	r.Fence(clk) // fence drains every queue
	st := r.WritebackQueueStats()
	if st.Drains != 1 || st.Lines != 4 || st.Pieces != 1 {
		t.Fatalf("drain stats = %+v, want 1 drain, 4 lines, 1 coalesced piece", st)
	}
	// Far memory must now hold every line.
	dump, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []int64{0, 2, 4, 6} {
		want := []byte{byte(e), 1, 2, 3, 4, 5, 6, 7}
		if !bytes.Equal(dump[e*64:e*64+8], want) {
			t.Fatalf("elem %d not drained: %x", e, dump[e*64:e*64+8])
		}
	}
}

func TestWbqBoundTriggersDrain(t *testing.T) {
	r, clk := wbqRuntime(t, 2)
	for _, e := range []int64{0, 4} { // tags 0 and 256: distinct lines
		if err := r.Access(clk, "items", e, fld(0, 8), []byte{1}, true, AccessOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := r.EvictHint(clk, "items", e); err != nil {
			t.Fatal(err)
		}
	}
	st := r.WritebackQueueStats()
	if st.Drains != 1 {
		t.Fatalf("hitting the bound did not drain: %+v", st)
	}
	if st.Lines != 2 {
		t.Fatalf("drained %d lines, want 2", st.Lines)
	}
}

func TestWbqLatestWriteWins(t *testing.T) {
	r, clk := wbqRuntime(t, 16)
	if err := r.Access(clk, "items", 3, fld(0, 8), []byte{1, 1, 1, 1, 1, 1, 1, 1}, true, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.EvictHint(clk, "items", 3); err != nil {
		t.Fatal(err)
	}
	// Re-touch the queued line (recovered locally), overwrite, park again:
	// the queue must keep only the newest copy.
	w2 := []byte{2, 2, 2, 2, 2, 2, 2, 2}
	if err := r.Access(clk, "items", 3, fld(0, 8), w2, true, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.EvictHint(clk, "items", 3); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump[3*64:3*64+8], w2) {
		t.Fatalf("far memory holds %x, want latest write %x", dump[3*64:3*64+8], w2)
	}
}

func TestWbqFlushAllDrainsQueues(t *testing.T) {
	r, clk := wbqRuntime(t, 16)
	w := []byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x11, 0x22}
	if err := r.Access(clk, "items", 5, fld(0, 8), w, true, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.EvictHint(clk, "items", 5); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	// DumpObject bypasses the cache: FlushAll returning means the queued
	// line already reached far memory.
	dump, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump[5*64:5*64+8], w) {
		t.Fatal("FlushAll returned before the write-back queue drained")
	}
}

func TestWbqDisabledWritesBackOnEviction(t *testing.T) {
	r, clk := wbqRuntime(t, -1)
	w := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := r.Access(clk, "items", 3, fld(0, 8), w, true, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.EvictHint(clk, "items", 3); err != nil {
		t.Fatal(err)
	}
	r.Fence(clk)
	if st := r.WritebackQueueStats(); st.Enqueued != 0 {
		t.Fatalf("disabled queue still used: %+v", st)
	}
	dump, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump[3*64:3*64+8], w) {
		t.Fatal("immediate write-back path lost the data")
	}
}

// TestWbqDegradedDrainReExpandsPatches pins the delta write-back safety
// rule: an entry planned as a patch while the link was healthy must ship as
// the FULL line when the drain lands with the breaker open. The degraded
// write parks in the transport's overlay against a far node whose memory
// the crash wipes — a patch would merge over base bytes that no longer
// exist. The queue carries the full line for exactly this re-expansion.
func TestWbqDegradedDrainReExpandsPatches(t *testing.T) {
	crash := sim.Time(200 * sim.Microsecond)
	restart := sim.Time(400 * sim.Microsecond)
	pol := transport.Policy{
		MaxAttempts:      2,
		BaseBackoff:      1 * sim.Microsecond,
		MaxBackoff:       8 * sim.Microsecond,
		DeadlineBase:     10 * sim.Microsecond,
		DeadlineMult:     2,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * sim.Microsecond,
		JitterSeed:       7,
	}
	r, clk := mkRuntime(t, func(c *Config) {
		c.Sections[0].Cache = cache.Config{Name: "items", Structure: cache.Direct, LineBytes: 128, SizeBytes: 1 << 10}
		c.Sections[0].Compress = true
		c.WritebackQueueLines = 16
		c.Faults = &faults.Config{Seed: 7, Schedule: []faults.Event{
			{At: crash, Kind: faults.Crash, LoseMemory: true},
			{At: restart, Kind: faults.Restart},
		}}
		c.Resilience = &pol
	})
	data := make([]byte, 128*64)
	for i := range data {
		data[i] = byte(i%251) + 1
	}
	if err := r.InitObject("items", data); err != nil {
		t.Fatal(err)
	}

	// Healthy phase: fetch the elems-2/3 line (the compressed section
	// snapshots it), dirty two well-separated fields, and park the victim.
	g := make([]byte, 8)
	if err := r.Access(clk, "items", 2, fld(0, 8), g, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	w1 := []byte{0xE0, 0xE1, 0xE2, 0xE3, 0xE4, 0xE5, 0xE6, 0xE7}
	w2 := []byte{0xD0, 0xD1, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7}
	if err := r.Access(clk, "items", 2, fld(0, 8), w1, true, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Access(clk, "items", 3, fld(0, 8), w2, true, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.EvictHint(clk, "items", 2); err != nil {
		t.Fatal(err)
	}
	// Elem 18 is tag 1152 → the same direct slot as tag 128: evicts it.
	if err := r.Access(clk, "items", 18, fld(0, 8), g, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if st := r.WritebackQueueStats(); st.DeltaLines != 1 {
		t.Fatalf("eviction did not plan a delta patch: %+v", st)
	}
	qb0 := r.NetStats().QueuedWritebacks

	// Trip the breaker inside the crash window with failing demand reads.
	clk.AdvanceTo(crash.Add(sim.Microsecond))
	for i := int64(0); !r.tr.BreakerOpen(clk.Now()) && i < 16; i++ {
		_ = r.Access(clk, "items", 32+2*i, fld(0, 8), g, false, AccessOpts{})
	}
	if !r.tr.BreakerOpen(clk.Now()) {
		t.Fatal("breaker never opened inside the crash window")
	}

	// Degraded drain: the patch entry must re-expand to one full line.
	if _, err := r.drainWbq(clk, r.secs[0]); err != nil {
		t.Fatal(err)
	}
	if got := r.NetStats().QueuedWritebacks - qb0; got != 1 {
		t.Fatalf("degraded drain queued %d overlay pieces, want 1 full line (a patch would queue 2)", got)
	}

	// Heal, flush the overlay into the wiped node, and check the line.
	clk.AdvanceTo(restart.Add(5 * sim.Microsecond))
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data[128:256]...)
	copy(want[0:], w1)
	copy(want[64:], w2)
	if !bytes.Equal(dump[128:256], want) {
		t.Fatalf("far line after wipe+flush wrong at %d: a patch merged over wiped base bytes",
			firstMismatch(dump[128:256], want))
	}
}

func firstMismatch(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}

// TestPrefetchInflightClearedOnEviction is the regression test for the
// stale in-flight entry: a prefetched-but-evicted line's tag must not keep
// suppressing future prefetches of the same line.
func TestPrefetchInflightClearedOnEviction(t *testing.T) {
	r, clk := wbqRuntime(t, 16)
	data := make([]byte, 128*64)
	for i := range data {
		data[i] = byte(i % 253)
	}
	_ = r.InitObject("items", data)

	if err := r.Prefetch(clk, "items", 0, fld(0, 8)); err != nil {
		t.Fatal(err)
	}
	// Elem 16 is tag 1024 → direct slot 0, same as elem 0's line: this
	// access evicts the in-flight placeholder.
	if err := r.Access(clk, "items", 16, fld(0, 8), make([]byte, 8), false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	// A second prefetch of elem 0 must actually fetch (a stale in-flight
	// entry would swallow it), so the subsequent access hits.
	if err := r.Prefetch(clk, "items", 0, fld(0, 8)); err != nil {
		t.Fatal(err)
	}
	r.Fence(clk)
	missesBefore := r.SectionStats(0).Misses
	g := make([]byte, 8)
	if err := r.Access(clk, "items", 0, fld(0, 8), g, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if r.SectionStats(0).Misses != missesBefore {
		t.Fatal("re-prefetch after eviction was suppressed by a stale in-flight entry")
	}
	if !bytes.Equal(g, data[:8]) {
		t.Fatalf("prefetched line has wrong data: %x", g)
	}
}
