package rt

import (
	"fmt"

	"mira/internal/ir"
	"mira/internal/sim"
)

// This file implements the runtime half of the legacy whole-call offload
// path (§4.8): the executor flushes the cached state of the objects an
// offloaded function touches, runs the function body against far-node
// memory directly via RemoteAccess/RemoteBulk, and charges the RPC round
// trip with OffloadTransfer. The scatter-gather path (internal/offload)
// supersedes this for calls the scatter analysis recognizes; everything
// else still lands here.

// RemoteAccess moves bytes of obj[elem].field directly in far-node memory —
// the data path of code running on the far node itself. The far node's
// local memory cost is charged to clk: remote execution does not ride free
// on memory (only on the network it avoids).
func (r *Runtime) RemoteAccess(clk *sim.Clock, name string, elem int64, field ir.Field, buf []byte, write bool) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("rt: remote access to unknown object %q", name)
	}
	if o.place.Kind == PlaceLocal {
		return fmt.Errorf("rt: offloaded code cannot access local object %q", name)
	}
	if elem < 0 || elem >= o.decl.Count {
		return fmt.Errorf("rt: remote %q[%d] out of range", name, elem)
	}
	addr := o.farBase + uint64(elem)*uint64(o.decl.ElemBytes) + uint64(field.Offset)
	if len(buf) > field.Bytes {
		buf = buf[:field.Bytes]
	}
	clk.Advance(r.cfg.Cost.NativeAccess)
	if write {
		return r.store.Write(addr, buf)
	}
	return r.store.Read(addr, buf)
}

// RemoteBulk is RemoteAccess for a contiguous element range; the far
// node's memory cost is charged per cache line moved.
func (r *Runtime) RemoteBulk(clk *sim.Clock, name string, elem int64, buf []byte, write bool) error {
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("rt: remote bulk access to unknown object %q", name)
	}
	if o.place.Kind == PlaceLocal {
		return fmt.Errorf("rt: offloaded code cannot access local object %q", name)
	}
	off := uint64(elem) * uint64(o.decl.ElemBytes)
	if elem < 0 || off+uint64(len(buf)) > uint64(o.decl.SizeBytes()) {
		return fmt.Errorf("rt: remote bulk [%d,+%d) outside %q", off, len(buf), name)
	}
	addr := o.farBase + off
	clk.Advance(r.cfg.Cost.NativeAccess * sim.Duration(len(buf)/64+1))
	if write {
		return r.store.Write(addr, buf)
	}
	return r.store.Read(addr, buf)
}

// CPUSlowdown reports the far node's compute slowdown.
func (r *Runtime) CPUSlowdown() float64 { return r.store.CPUSlowdown() }

// OffloadTransfer charges the RPC round trip: arguments out (two-sided),
// remote compute scaled by the far CPU's slowdown, results back.
func (r *Runtime) OffloadTransfer(clk *sim.Clock, argBytes, resBytes int, remoteCompute sim.Duration) {
	clk.Advance(r.cfg.Net.TwoSidedCost(argBytes))
	clk.Advance(sim.Duration(float64(remoteCompute) * r.store.CPUSlowdown()))
	clk.Advance(r.cfg.Net.TwoSidedCost(resBytes))
}
