package rt

import (
	"fmt"

	"mira/internal/cache"
	"mira/internal/cluster"
	"mira/internal/faults"
	"mira/internal/netmodel"
	"mira/internal/swap"
	"mira/internal/transport"
)

// PlaceKind says where an object's data lives.
type PlaceKind int

const (
	// PlaceSwap runs the object through the generic swap section — the
	// initial configuration for every object (§3) and the fallback for
	// patterns analysis cannot decide.
	PlaceSwap PlaceKind = iota
	// PlaceSection assigns the object to a non-swap cache section with
	// compiled remote accesses.
	PlaceSection
	// PlaceLocal pins the object in local memory (stack data, objects
	// the planner decides fit locally).
	PlaceLocal
)

func (k PlaceKind) String() string {
	switch k {
	case PlaceSwap:
		return "swap"
	case PlaceSection:
		return "section"
	case PlaceLocal:
		return "local"
	default:
		return fmt.Sprintf("PlaceKind(%d)", int(k))
	}
}

// Placement maps one object to its home.
type Placement struct {
	Kind PlaceKind
	// Section indexes Config.Sections when Kind == PlaceSection.
	Section int
}

// SectionSpec configures one non-swap cache section (§4.2's outputs: line
// size, structure, size, communication method, selective-transmission field
// set).
type SectionSpec struct {
	Cache cache.Config
	// TwoSided selects message-based communication; required for
	// selective (partial-structure) transmission (§4.7).
	TwoSided bool
	// SelectiveFields names the fields actually accessed in the
	// section's scope; when non-empty and TwoSided, misses fetch only
	// these byte ranges of each element (§4.5 selective transmission).
	// Write-backs likewise push only these ranges.
	SelectiveFields []string
	// Compress ships the section's lines ByteRun-compressed on the wire
	// and delta-encodes dirty write-backs against the last-fetched
	// snapshot of each line. A per-section knob: the planner turns it on
	// only where sampled compressibility and link occupancy say it pays.
	Compress bool
}

// Config assembles a runtime configuration: the local-memory budget and how
// it is carved into the swap pool and the cache sections. The planner emits
// Configs; tests build them by hand.
type Config struct {
	// LocalBudget is the application's total local memory in bytes (the
	// x-axis of most of the paper's figures).
	LocalBudget int64
	// SwapPool is the byte budget of the generic swap section.
	SwapPool int64
	// Sections are the non-swap cache sections.
	Sections []SectionSpec
	// Placements maps object names to homes; unmapped objects default
	// to PlaceSwap.
	Placements map[string]Placement
	// Cost is the local cost model.
	Cost CostModel
	// Net is the interconnect cost model.
	Net netmodel.Config
	// SwapCfg overrides the swap fault-path costs (zero value: defaults
	// from swap.DefaultConfig).
	SwapCfg swap.Config
	// SwapCompress ships swap pages ByteRun-compressed on the wire (the
	// page-granular analogue of SectionSpec.Compress).
	SwapCompress bool
	// Profiling enables the compiler-inserted probes' cost accounting.
	Profiling bool
	// WritebackQueueLines bounds each section's asynchronous write-back
	// queue: dirty victims park there and drain in background simulated
	// time as coalesced vectored writes, so a miss stops paying the
	// victim's write latency unless the queue is full. Zero means
	// DefaultWritebackQueueLines; negative disables the pipeline (dirty
	// victims write back immediately on the miss path).
	WritebackQueueLines int
	// Faults, when non-nil and enabled, interposes the deterministic
	// fault injector between the transport and the far node. Single-node
	// only: a cluster carries per-node fault domains in Cluster.Faults.
	Faults *faults.Config
	// Resilience overrides the transport's retry/deadline/breaker policy.
	// Nil uses transport.DefaultPolicy. In cluster mode it seeds each
	// node's policy unless Cluster.Policy is set explicitly.
	Resilience *transport.Policy
	// Cluster, when non-nil, replaces the single far node with a sharded,
	// replicated pool of far nodes: sections and the swap heap are placed
	// across the pool and the runtime's data path routes per placement
	// entry. Cluster.Net defaults to Config.Net.
	Cluster *cluster.Options
	// OffloadChunk is the scatter-gather offload engine's streaming chunk
	// size in bytes (operand, result, and commit streams). Zero selects
	// netmodel.DefaultStreamChunk. Cluster mode only.
	OffloadChunk int
	// Hybrid binds every far object — swap- and section-placed — into one
	// contiguous far region covered end-to-end by the swap cache, with each
	// object padded to whole pages. That unified layout is what makes
	// per-object plane switching possible: MigrateObject can flush an
	// object's state off one plane and re-register its (page-exclusive)
	// address range on the other mid-run. Single-node only.
	Hybrid bool
}

// Validate checks structural sanity and that the carve-up fits the budget.
func (c Config) Validate() error {
	if c.LocalBudget <= 0 {
		return fmt.Errorf("rt: LocalBudget must be positive, got %d", c.LocalBudget)
	}
	if err := c.Net.Validate(); err != nil {
		return err
	}
	total := c.SwapPool
	for i, s := range c.Sections {
		if err := s.Cache.Validate(); err != nil {
			return fmt.Errorf("rt: section %d: %w", i, err)
		}
		total += s.Cache.SizeBytes
	}
	if total > c.LocalBudget {
		return fmt.Errorf("rt: sections+swap use %d bytes, budget is %d", total, c.LocalBudget)
	}
	for name, pl := range c.Placements {
		if pl.Kind == PlaceSection && (pl.Section < 0 || pl.Section >= len(c.Sections)) {
			return fmt.Errorf("rt: object %q placed in section %d of %d", name, pl.Section, len(c.Sections))
		}
	}
	if c.Cluster != nil {
		if c.Cluster.Nodes < 1 {
			return fmt.Errorf("rt: cluster with %d nodes", c.Cluster.Nodes)
		}
		if c.Faults != nil && c.Faults.Enabled() {
			return fmt.Errorf("rt: single-node Faults config with a cluster — put per-node faults in Cluster.Faults")
		}
		if c.Hybrid {
			return fmt.Errorf("rt: Hybrid layout is single-node (cluster placement routes per section, not per page)")
		}
	}
	return nil
}

// writebackQueueLimit resolves the WritebackQueueLines knob: zero defaults,
// negative disables.
func (c Config) writebackQueueLimit() int {
	switch {
	case c.WritebackQueueLines < 0:
		return 0
	case c.WritebackQueueLines == 0:
		return DefaultWritebackQueueLines
	default:
		return c.WritebackQueueLines
	}
}

// DefaultSwapConfig fills in fault-path costs if the caller left them zero.
func (c Config) effectiveSwapCfg(pool int64) swap.Config {
	sc := c.SwapCfg
	sc.PoolBytes = pool
	if sc.MajorFaultOverhead == 0 {
		d := swap.DefaultConfig(pool)
		sc.MajorFaultOverhead = d.MajorFaultOverhead
		sc.MinorFaultOverhead = d.MinorFaultOverhead
	}
	if sc.Net.BytesPerSecond == 0 {
		sc.Net = c.Net // batched-prefetch readiness staggering
	}
	return sc
}
