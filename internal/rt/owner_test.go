package rt

import (
	"testing"

	"mira/internal/cache"
	"mira/internal/farmem"
	"mira/internal/ir"
)

// TestOwnerOfMidLineBoundary pins down dirty-line owner resolution when two
// adjacent section-placed objects share a cache line: the boundary between
// them falls mid-line, so the straddling line's tag (the aligned-down head
// of the second object) is claimed by both the first object's exact range
// and the second object's head rule. The old ownerOf ranged over the objs
// map, so which object won depended on map iteration order; the sorted
// index must always resolve exact containment first.
func TestOwnerOfMidLineBoundary(t *testing.T) {
	b := ir.NewBuilder("ownertest")
	b.FloatArray("alpha", 80) // 640 bytes: 2.5 lines of 256
	b.FloatArray("beta", 80)
	b.Func("main")
	prog := b.MustProgram()

	cfg := Config{
		LocalBudget: 1 << 20,
		Sections: []SectionSpec{{
			Cache: cache.Config{Name: "s", Structure: cache.Direct, LineBytes: 256, SizeBytes: 4 << 10},
		}},
		Placements: map[string]Placement{
			"alpha": {Kind: PlaceSection, Section: 0},
			"beta":  {Kind: PlaceSection, Section: 0},
		},
	}
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 26, CPUSlowdown: 1})
	r, err := New(cfg, node)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(prog); err != nil {
		t.Fatal(err)
	}

	// Bind line-aligns farBase, so relocate the objects to be exactly
	// adjacent: beta starts at alpha's end, 640 bytes past a line-aligned
	// base — mid-way through the third 256-byte line.
	alpha, beta := r.objs["alpha"], r.objs["beta"]
	base := farmem.DefaultBase
	alpha.farBase = base
	beta.farBase = base + uint64(alpha.decl.SizeBytes())
	r.rebuildOwnerIndex()

	boundary := beta.farBase
	sharedTag := cache.AlignDown(boundary, 256) // tag of the straddling line

	cases := []struct {
		name string
		far  uint64
		want *objectRT
	}{
		{"alpha interior", base + 100, alpha},
		{"straddling line tag (alpha's tail)", sharedTag, alpha},
		{"last byte of alpha", boundary - 1, alpha},
		{"first byte of beta", boundary, beta},
		{"beta interior", boundary + 100, beta},
		{"last byte of beta", boundary + uint64(beta.decl.SizeBytes()) - 1, beta},
		{"past beta's end", boundary + uint64(beta.decl.SizeBytes()), nil},
		{"below alpha", base - 1, nil},
	}
	for _, tc := range cases {
		// The old map-order bug was nondeterministic, so probe repeatedly:
		// every resolution must agree.
		for i := 0; i < 64; i++ {
			got := r.ownerOf(tc.far)
			if got != tc.want {
				name := "<nil>"
				if got != nil {
					name = got.decl.Name
				}
				t.Fatalf("%s: ownerOf(%#x) = %s (iteration %d)", tc.name, tc.far, name, i)
			}
		}
	}
}

// TestOwnerOfUnalignedHead covers the head-claim rule on its own: an object
// whose farBase is mid-line owns its first line's aligned-down tag even
// though that address precedes farBase, as its dirty first line carries
// that tag.
func TestOwnerOfUnalignedHead(t *testing.T) {
	b := ir.NewBuilder("headtest")
	b.FloatArray("solo", 80)
	b.Func("main")
	prog := b.MustProgram()

	cfg := Config{
		LocalBudget: 1 << 20,
		Sections: []SectionSpec{{
			Cache: cache.Config{Name: "s", Structure: cache.Direct, LineBytes: 256, SizeBytes: 4 << 10},
		}},
		Placements: map[string]Placement{"solo": {Kind: PlaceSection, Section: 0}},
	}
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 26, CPUSlowdown: 1})
	r, err := New(cfg, node)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(prog); err != nil {
		t.Fatal(err)
	}

	solo := r.objs["solo"]
	solo.farBase = farmem.DefaultBase + 128 // mid-line start
	r.rebuildOwnerIndex()

	tag := cache.AlignDown(solo.farBase, 256)
	if got := r.ownerOf(tag); got != solo {
		t.Fatalf("ownerOf(head tag %#x) = %v, want solo", tag, got)
	}
	if got := r.ownerOf(tag - 1); got != nil {
		t.Fatalf("ownerOf below head tag = %v, want nil", got)
	}
}
