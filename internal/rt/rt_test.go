package rt

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"mira/internal/cache"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/sim"
)

func TestRemotePtrRoundtrip(t *testing.T) {
	f := func(section uint16, offRaw uint64) bool {
		off := offRaw & offsetMask
		p := MakePtr(section, off)
		return p.Section() == section && p.Offset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemotePtrLocalConvention(t *testing.T) {
	p := MakePtr(LocalSection, 0x1234)
	if !p.IsLocal() {
		t.Fatal("section-0 pointer not local")
	}
	q := MakePtr(3, 0x1234)
	if q.IsLocal() {
		t.Fatal("section-3 pointer claimed local")
	}
	// A plain local address reinterpreted as a RemotePtr must read as
	// local (its high 16 bits are zero) — the paper's convention.
	if !RemotePtr(0x7fff_1234_5678).IsLocal() {
		t.Fatal("plain address not recognized as local")
	}
}

func TestRemotePtrOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("48-bit overflow did not panic")
		}
	}()
	MakePtr(1, 1<<48)
}

func TestLocalAllocatorBuffers(t *testing.T) {
	next := uint64(1 << 20)
	calls := 0
	la := NewLocalAllocator(4096, func(n uint64) (uint64, error) {
		calls++
		base := next
		next += n
		return base, nil
	})
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		a, err := la.Alloc(32)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("duplicate address %#x", a)
		}
		seen[a] = true
	}
	// 64 x 32B = 2 KB, served by a single 4 KB remote refill.
	if calls != 1 {
		t.Fatalf("remote allocator consulted %d times, want 1", calls)
	}
	if la.RemoteCalls() != calls {
		t.Fatalf("RemoteCalls = %d, want %d", la.RemoteCalls(), calls)
	}
	if la.BufferedBytes() != 4096-64*32 {
		t.Fatalf("BufferedBytes = %d", la.BufferedBytes())
	}
}

// testProgram returns a program with one struct array and one float array.
func testProgram() *ir.Program {
	b := ir.NewBuilder("rttest")
	b.Object("items", 64, 128,
		ir.F("key", 0, 8),
		ir.F("val", 8, 8),
		ir.F("pad", 16, 48))
	b.FloatArray("vec", 512)
	b.Func("main")
	return b.MustProgram()
}

// mkRuntime builds a runtime with items in a set-assoc section and vec in
// swap.
func mkRuntime(t *testing.T, mutate func(*Config)) (*Runtime, *sim.Clock) {
	t.Helper()
	cfg := Config{
		LocalBudget: 1 << 20,
		SwapPool:    64 << 10,
		Sections: []SectionSpec{{
			Cache: cache.Config{Name: "items", Structure: cache.SetAssoc, Ways: 4, LineBytes: 128, SizeBytes: 16 << 10},
		}},
		Placements: map[string]Placement{
			"items": {Kind: PlaceSection, Section: 0},
			"vec":   {Kind: PlaceSwap},
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 26, CPUSlowdown: 1})
	r, err := New(cfg, node)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(testProgram()); err != nil {
		t.Fatal(err)
	}
	return r, sim.NewClock(0)
}

func fld(off, sz int) ir.Field { return ir.Field{Offset: off, Bytes: sz} }

func TestConfigValidateRejectsOverBudget(t *testing.T) {
	cfg := Config{
		LocalBudget: 1024,
		SwapPool:    512,
		Sections: []SectionSpec{{
			Cache: cache.Config{Structure: cache.Direct, LineBytes: 64, SizeBytes: 1024},
		}},
	}
	if err := cfg.Validate(); err == nil {
		t.Fatal("over-budget carve-up accepted")
	}
}

func TestAccessRoundtripSection(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	w := make([]byte, 8)
	binary.LittleEndian.PutUint64(w, 0xdeadbeef)
	if err := r.Access(clk, "items", 5, fld(8, 8), w, true, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	g := make([]byte, 8)
	if err := r.Access(clk, "items", 5, fld(8, 8), g, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatalf("read %x, want %x", g, w)
	}
}

func TestAccessRoundtripSwap(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	w := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if err := r.Access(clk, "vec", 100, fld(0, 8), w, true, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	g := make([]byte, 8)
	if err := r.Access(clk, "vec", 100, fld(0, 8), g, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatalf("read %x, want %x", g, w)
	}
}

func TestAccessOutOfRange(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	if err := r.Access(clk, "items", 128, fld(0, 8), make([]byte, 8), false, AccessOpts{}); err == nil {
		t.Fatal("out-of-range element accepted")
	}
	if err := r.Access(clk, "ghost", 0, fld(0, 8), make([]byte, 8), false, AccessOpts{}); err == nil {
		t.Fatal("unknown object accepted")
	}
}

func TestInitAndDump(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	data := make([]byte, 64*128)
	for i := range data {
		data[i] = byte(i)
	}
	if err := r.InitObject("items", data); err != nil {
		t.Fatal(err)
	}
	// Read element 3's key through the cache.
	g := make([]byte, 8)
	if err := r.Access(clk, "items", 3, fld(0, 8), g, false, AccessOpts{}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, data[3*64:3*64+8]) {
		t.Fatal("cached read disagrees with initialized data")
	}
	// Dirty write, then flush, then dump.
	w := []byte{9, 9, 9, 9, 9, 9, 9, 9}
	_ = r.Access(clk, "items", 3, fld(0, 8), w, true, AccessOpts{})
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump[3*64:3*64+8], w) {
		t.Fatal("dirty write lost after flush")
	}
}

func TestHitCheaperThanMiss(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	buf := make([]byte, 8)
	_ = r.Access(clk, "items", 0, fld(0, 8), buf, false, AccessOpts{})
	missCost := clk.Now().Sub(0)
	before := clk.Now()
	_ = r.Access(clk, "items", 0, fld(0, 8), buf, false, AccessOpts{})
	hitCost := clk.Now().Sub(before)
	if hitCost*20 > missCost {
		t.Fatalf("hit %v not far below miss %v", hitCost, missCost)
	}
}

func TestNativeAccessCheaperThanDeref(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	buf := make([]byte, 8)
	_ = r.Access(clk, "items", 0, fld(0, 8), buf, false, AccessOpts{})

	before := clk.Now()
	_ = r.Access(clk, "items", 0, fld(0, 8), buf, false, AccessOpts{})
	deref := clk.Now().Sub(before)

	before = clk.Now()
	_ = r.Access(clk, "items", 0, fld(0, 8), buf, false, AccessOpts{Native: true})
	native := clk.Now().Sub(before)

	if native >= deref {
		t.Fatalf("native %v not cheaper than deref %v", native, deref)
	}
}

func TestNativeFallbackOnAbsentLine(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	// Native access to a line that was never fetched must still return
	// correct data (fallback to the slow path).
	data := make([]byte, 64*128)
	data[7*64] = 0x5a
	_ = r.InitObject("items", data)
	g := make([]byte, 8)
	if err := r.Access(clk, "items", 7, fld(0, 8), g, false, AccessOpts{Native: true}); err != nil {
		t.Fatal(err)
	}
	if g[0] != 0x5a {
		t.Fatal("native fallback returned wrong data")
	}
}

func TestPrefetchOverlapsLatency(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	buf := make([]byte, 8)

	// Cold miss cost.
	_ = r.Access(clk, "items", 0, fld(0, 8), buf, false, AccessOpts{})
	start := clk.Now()
	_ = r.Access(clk, "items", 20, fld(0, 8), buf, false, AccessOpts{})
	missCost := clk.Now().Sub(start)

	// Prefetch far ahead, burn equivalent compute time, then access.
	_ = r.Prefetch(clk, "items", 40, fld(0, 8))
	clk.Advance(missCost * 2) // plenty of compute to hide the fetch
	start = clk.Now()
	_ = r.Access(clk, "items", 40, fld(0, 8), buf, false, AccessOpts{})
	prefetched := clk.Now().Sub(start)

	if prefetched*5 > missCost {
		t.Fatalf("prefetched access %v not far below demand miss %v", prefetched, missCost)
	}
}

func TestPrefetchPastEndIsNoop(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	if err := r.Prefetch(clk, "items", 10_000, fld(0, 8)); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetchBatchFetchesAll(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	data := make([]byte, 64*128)
	for i := range data {
		data[i] = byte(i % 251)
	}
	_ = r.InitObject("items", data)
	entries := []BatchEntry{
		{Obj: "items", Elem: 0, Field: fld(0, 8)},
		{Obj: "items", Elem: 10, Field: fld(0, 8)},
		{Obj: "items", Elem: 20, Field: fld(0, 8)},
	}
	if err := r.PrefetchBatch(clk, entries); err != nil {
		t.Fatal(err)
	}
	r.Fence(clk)
	for _, e := range entries {
		g := make([]byte, 8)
		before := r.SectionStats(0).Misses
		if err := r.Access(clk, e.Obj, e.Elem, e.Field, g, false, AccessOpts{}); err != nil {
			t.Fatal(err)
		}
		if r.SectionStats(0).Misses != before {
			t.Fatalf("element %d missed after batch prefetch", e.Elem)
		}
		if !bytes.Equal(g, data[e.Elem*64:e.Elem*64+8]) {
			t.Fatalf("element %d: wrong data after batch prefetch", e.Elem)
		}
	}
}

func TestEvictHintFlushesDirty(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	w := []byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x11, 0x22}
	_ = r.Access(clk, "items", 9, fld(0, 8), w, true, AccessOpts{})
	if err := r.EvictHint(clk, "items", 9); err != nil {
		t.Fatal(err)
	}
	r.Fence(clk)
	// Far memory must already hold the data without any further flush.
	dump, err := r.DumpObject("items")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dump[9*64:9*64+8], w) {
		t.Fatal("eviction hint did not flush dirty line")
	}
}

func TestNoFetchStoreSkipsNetworkRead(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	node := r.Node()
	readBefore, _, _ := node.Stats()
	// Write a whole 128B line (elements 0 and 1) with NoFetch.
	w := make([]byte, 64)
	for i := range w {
		w[i] = 0x3c
	}
	_ = r.Access(clk, "items", 0, fld(0, 64), w, true, AccessOpts{NoFetch: true})
	_ = r.Access(clk, "items", 1, fld(0, 64), w, true, AccessOpts{NoFetch: true})
	readAfter, _, _ := node.Stats()
	if readAfter != readBefore {
		t.Fatalf("NoFetch store still read %d bytes from far memory", readAfter-readBefore)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, _ := r.DumpObject("items")
	if !bytes.Equal(dump[:64], w) || !bytes.Equal(dump[64:128], w) {
		t.Fatal("NoFetch store lost data")
	}
}

func TestSelectiveTransmissionMovesFewerBytes(t *testing.T) {
	mk := func(selective bool) int64 {
		cfgFn := func(c *Config) {
			c.Sections[0].Cache.LineBytes = 256
			if selective {
				c.Sections[0].TwoSided = true
				c.Sections[0].SelectiveFields = []string{"key", "val"}
			}
		}
		r, clk := mkRuntime(t, cfgFn)
		buf := make([]byte, 8)
		for e := int64(0); e < 64; e++ {
			_ = r.Access(clk, "items", e, fld(0, 8), buf, false, AccessOpts{})
			_ = r.Access(clk, "items", e, fld(8, 8), buf, false, AccessOpts{})
		}
		return r.BytesMoved()
	}
	full := mk(false)
	sel := mk(true)
	if sel*2 > full {
		t.Fatalf("selective transmission moved %d bytes, full lines %d — expected far less", sel, full)
	}
}

func TestSelectiveTransmissionCorrectRoundtrip(t *testing.T) {
	r, clk := mkRuntime(t, func(c *Config) {
		c.Sections[0].TwoSided = true
		c.Sections[0].SelectiveFields = []string{"key", "val"}
	})
	data := make([]byte, 64*128)
	for i := range data {
		data[i] = byte(i * 13)
	}
	_ = r.InitObject("items", data)
	// Read keys, overwrite vals, flush, verify both selective fields and
	// untouched pad bytes.
	for e := int64(0); e < 32; e++ {
		g := make([]byte, 8)
		if err := r.Access(clk, "items", e, fld(0, 8), g, false, AccessOpts{}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(g, data[e*64:e*64+8]) {
			t.Fatalf("element %d key mismatch", e)
		}
		w := []byte{byte(e), 0, 0, 0, 0, 0, 0, 1}
		if err := r.Access(clk, "items", e, fld(8, 8), w, true, AccessOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, _ := r.DumpObject("items")
	for e := int64(0); e < 32; e++ {
		if !bytes.Equal(dump[e*64+8:e*64+16], []byte{byte(e), 0, 0, 0, 0, 0, 0, 1}) {
			t.Fatalf("element %d val not written back", e)
		}
		if !bytes.Equal(dump[e*64+16:e*64+64], data[e*64+16:e*64+64]) {
			t.Fatalf("element %d pad corrupted by selective writeback", e)
		}
	}
}

func TestBulkRoundtrip(t *testing.T) {
	r, clk := mkRuntime(t, func(c *Config) {
		c.Placements["vec"] = Placement{Kind: PlaceSection, Section: 0}
	})
	w := make([]byte, 512*8)
	for i := range w {
		w[i] = byte(i * 31)
	}
	if err := r.BulkWrite(clk, "vec", 0, w); err != nil {
		t.Fatal(err)
	}
	g := make([]byte, 512*8)
	if err := r.BulkRead(clk, "vec", 0, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatal("bulk roundtrip mismatch")
	}
}

func TestBulkUnalignedBoundary(t *testing.T) {
	r, clk := mkRuntime(t, func(c *Config) {
		c.Placements["vec"] = Placement{Kind: PlaceSection, Section: 0}
	})
	init := make([]byte, 512*8)
	for i := range init {
		init[i] = 0x11
	}
	_ = r.InitObject("vec", init)
	// Write 3 elements starting at element 5: partially covers lines.
	w := []byte{1, 1, 1, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3}
	if err := r.BulkWrite(clk, "vec", 5, w); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, _ := r.DumpObject("vec")
	if !bytes.Equal(dump[5*8:8*8], w) {
		t.Fatal("bulk write lost")
	}
	if dump[4*8] != 0x11 || dump[8*8] != 0x11 {
		t.Fatal("bulk write corrupted neighbours")
	}
}

func TestBulkLargerThanSection(t *testing.T) {
	// vec (4 KB) through a 1 KB section: pass-1 fetches evict each
	// other; pass 2 must still produce correct data.
	r, clk := mkRuntime(t, func(c *Config) {
		c.Sections[0].Cache.SizeBytes = 1 << 10
		c.Placements["vec"] = Placement{Kind: PlaceSection, Section: 0}
	})
	w := make([]byte, 512*8)
	for i := range w {
		w[i] = byte(i % 256)
	}
	_ = r.InitObject("vec", w)
	g := make([]byte, 512*8)
	if err := r.BulkRead(clk, "vec", 0, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatal("bulk read through small section mismatched")
	}
}

func TestFlushObjectOnlyTouchesTarget(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	buf := make([]byte, 8)
	_ = r.Access(clk, "items", 0, fld(0, 8), buf, false, AccessOpts{})
	missesBefore := r.SectionStats(0).Misses
	if err := r.FlushObject(clk, "items"); err != nil {
		t.Fatal(err)
	}
	_ = r.Access(clk, "items", 0, fld(0, 8), buf, false, AccessOpts{})
	if r.SectionStats(0).Misses != missesBefore+1 {
		t.Fatal("line survived FlushObject")
	}
}

func TestReleaseSectionFlushesDirty(t *testing.T) {
	r, clk := mkRuntime(t, nil)
	w := []byte{7, 7, 7, 7, 7, 7, 7, 7}
	_ = r.Access(clk, "items", 2, fld(0, 8), w, true, AccessOpts{})
	if err := r.ReleaseSection(clk, 0); err != nil {
		t.Fatal(err)
	}
	r.Fence(clk)
	dump, _ := r.DumpObject("items")
	if !bytes.Equal(dump[2*64:2*64+8], w) {
		t.Fatal("ReleaseSection lost dirty data")
	}
}

func TestMetadataAccounting(t *testing.T) {
	r, _ := mkRuntime(t, nil)
	md := r.MetadataBytes()
	if md <= 0 {
		t.Fatal("no metadata accounted")
	}
	// 16KB/128B = 128 lines x 24B (set-assoc) + 16 pages x 16B.
	want := int64(128*24 + 16*16)
	if md != want {
		t.Fatalf("MetadataBytes = %d, want %d", md, want)
	}
}

func TestPtrEncoding(t *testing.T) {
	r, _ := mkRuntime(t, nil)
	p, err := r.Ptr("items", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Section() != 1 {
		t.Fatalf("section = %d, want 1", p.Section())
	}
	q, err := r.Ptr("vec", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !q.IsLocal() {
		t.Fatal("swap-placed object pointer should use the local/section-0 convention")
	}
}

func TestBindRejectsLocalOverBudget(t *testing.T) {
	b := ir.NewBuilder("big")
	o := b.IntArray("huge", 1<<20) // 8 MB local
	o.Local = true
	b.Func("main")
	p := b.MustProgram()
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 26, CPUSlowdown: 1})
	r, err := New(Config{LocalBudget: 1 << 20, SwapPool: 4096}, node)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(p); err == nil {
		t.Fatal("local object exceeding budget accepted")
	}
}

func TestProfilingChargesProbes(t *testing.T) {
	run := func(profiling bool) sim.Duration {
		r, clk := mkRuntime(t, func(c *Config) { c.Profiling = profiling })
		buf := make([]byte, 8)
		for e := int64(0); e < 64; e++ {
			_ = r.Access(clk, "items", e, fld(0, 8), buf, false, AccessOpts{})
		}
		return clk.Now().Sub(0)
	}
	off := run(false)
	on := run(true)
	if on <= off {
		t.Fatal("profiling charged nothing")
	}
	overhead := float64(on-off) / float64(off)
	if overhead > 0.05 {
		t.Fatalf("profiling overhead %.2f%% above the paper's ~1%% ballpark", overhead*100)
	}
}
