package rt

import (
	"fmt"
	"sort"

	"mira/internal/cache"
	"mira/internal/codec"
	"mira/internal/ir"
	"mira/internal/plane"
	"mira/internal/sim"
	"mira/internal/swap"
	"mira/internal/trace"
)

// bindHybrid is Bind under Config.Hybrid: every far object — swap- and
// section-placed alike — is laid out in ONE contiguous far region, sorted by
// name, with each object padded out to whole 4 KiB pages (section objects
// also reserve head/tail line slack so their line-aligned lines never leave
// their own pages). The swap cache covers the region end to end. Because no
// page is shared between two objects and no line leaves its object's pages,
// either plane can serve any object's range without touching a neighbor's
// state — the invariant MigrateObject relies on.
//
// For an all-swap configuration the layout (sort order, page-rounded
// offsets, single heap allocation) is byte-for-byte the classic Bind swap
// layout, so pure-page runs under Hybrid time identically to the classic
// swap path.
func (r *Runtime) bindHybrid(p *ir.Program) error {
	var far []*ir.Object
	anySwap := false
	for _, o := range p.Objects {
		pl, ok := r.cfg.Placements[o.Name]
		if !ok {
			if o.Local {
				pl = Placement{Kind: PlaceLocal}
			} else {
				pl = Placement{Kind: PlaceSwap}
			}
		}
		ort := &objectRT{decl: o, place: pl, homeSec: -1}
		switch pl.Kind {
		case PlaceLocal:
			ort.local = make([]byte, o.SizeBytes())
			r.localBytes += o.SizeBytes()
		case PlaceSwap:
			anySwap = true
			far = append(far, o)
		case PlaceSection:
			ort.homeSec = pl.Section
			far = append(far, o)
		}
		r.objs[o.Name] = ort
	}
	if len(far) > 0 {
		sort.Slice(far, func(i, j int) bool { return far[i].Name < far[j].Name })
		var total int64
		offsets := make(map[string]int64, len(far))
		for _, o := range far {
			offsets[o.Name] = total
			size := o.SizeBytes()
			if hs := r.objs[o.Name].homeSec; hs >= 0 {
				// Line slack: the line-aligned farBase sits up to one line
				// past the page start, and the object's last line may extend
				// past its end — pad so every line a section can hold stays
				// inside this object's own pages.
				size += 2 * int64(r.secs[hs].spec.Cache.LineBytes)
			}
			total += (size + swap.PageBytes - 1) / swap.PageBytes * swap.PageBytes
		}
		base, err := r.la.Alloc(uint64(total))
		if err != nil {
			return fmt.Errorf("rt: bind hybrid heap: %w", err)
		}
		for _, o := range far {
			ort := r.objs[o.Name]
			ort.farBase = base + uint64(offsets[o.Name])
			if ort.homeSec >= 0 {
				s := r.secs[ort.homeSec]
				lb := uint64(s.spec.Cache.LineBytes)
				ort.farBase = (ort.farBase + lb - 1) / lb * lb
				r.resolveSelective(ort, s)
			}
		}
		pool := r.cfg.SwapPool
		if anySwap && pool <= 0 {
			return fmt.Errorf("rt: program has swap-placed objects but SwapPool is %d", pool)
		}
		if pool > 0 {
			sc, err := swap.New(r.cfg.effectiveSwapCfg(pool), r.tr, base, total, nil)
			if err != nil {
				return err
			}
			r.swapC = sc
			r.swapSz = total
		}
	}
	if r.localBytes+r.cfg.SwapPool+r.sectionBytes() > r.cfg.LocalBudget {
		return fmt.Errorf("rt: local objects (%d) + cache carve-up exceed budget %d",
			r.localBytes, r.cfg.LocalBudget)
	}
	r.rebuildOwnerIndex()
	return nil
}

// PagePlane returns the paged data plane over the runtime's swap region as
// a plane.DataPlane (nil when the configuration has no swap cache).
// Accesses charge the same costs as Runtime.Access's swap path, including
// the SwapCompress wire codec.
func (r *Runtime) PagePlane() plane.DataPlane {
	if r.swapC == nil {
		return nil
	}
	return &pagePlane{r: r}
}

type pagePlane struct{ r *Runtime }

func (p *pagePlane) Kind() plane.Kind   { return plane.Page }
func (p *pagePlane) UnitBytes() int     { return swap.PageBytes }
func (p *pagePlane) CapacityUnits() int { return p.r.swapC.Capacity() }
func (p *pagePlane) ResidentUnits() int { return p.r.swapC.Resident() }

func (p *pagePlane) Access(clk *sim.Clock, far uint64, buf []byte, write bool) error {
	clk.Advance(p.r.cfg.Cost.NativeAccess)
	if p.r.cfg.SwapCompress {
		p.r.setCodec(codec.ByteRun)
		defer p.r.setCodec(codec.None)
	}
	if write {
		return p.r.swapC.Write(clk, far, buf)
	}
	return p.r.swapC.Read(clk, far, buf)
}

func (p *pagePlane) PrefetchBatch(clk *sim.Clock, fars []uint64) error {
	return p.r.swapPrefetchFars(clk, fars)
}

func (p *pagePlane) Evict(clk *sim.Clock, far uint64, length int64) error {
	return p.r.swapFlushRange(clk, far, length)
}

func (p *pagePlane) Fence(clk *sim.Clock) { p.r.swapC.Fence(clk) }

func (p *pagePlane) Flush(clk *sim.Clock) error {
	if p.r.cfg.SwapCompress {
		p.r.setCodec(codec.ByteRun)
		defer p.r.setCodec(codec.None)
	}
	return p.r.swapC.FlushAll(clk)
}

func (p *pagePlane) Stats() plane.Stats        { return swap.Plane{C: p.r.swapC}.Stats() }
func (p *pagePlane) SetTrace(tr *trace.Tracer) { p.r.swapC.SetTrace(tr) }

// swapFlushRange is FlushRange through the runtime's swap codec settings.
func (r *Runtime) swapFlushRange(clk *sim.Clock, far uint64, length int64) error {
	if r.swapC == nil {
		return nil
	}
	if r.cfg.SwapCompress {
		r.setCodec(codec.ByteRun)
		defer r.setCodec(codec.None)
	}
	return r.swapC.FlushRange(clk, far, length)
}

// swapPrefetchFars turns far addresses into page advisories (out-of-range
// addresses become dropped proposals, as the advisory contract requires).
func (r *Runtime) swapPrefetchFars(clk *sim.Clock, fars []uint64) error {
	if r.swapC == nil {
		return nil
	}
	base := r.swapC.Base()
	pnos := make([]int64, 0, len(fars))
	for _, far := range fars {
		if far < base {
			pnos = append(pnos, -1)
			continue
		}
		pnos = append(pnos, int64((far-base)/swap.PageBytes))
	}
	if r.cfg.SwapCompress {
		r.setCodec(codec.ByteRun)
		defer r.setCodec(codec.None)
	}
	return r.swapC.PrefetchPages(clk, pnos)
}

// LinePlane returns cache section idx as a plane.DataPlane: an address-based
// view over the section's objects, resolving owners through the same
// deterministic farBase index the dirty write-back path uses.
func (r *Runtime) LinePlane(idx int) (plane.DataPlane, error) {
	if idx < 0 || idx >= len(r.secs) {
		return nil, fmt.Errorf("rt: line plane index %d of %d sections", idx, len(r.secs))
	}
	return &linePlane{r: r, idx: idx}, nil
}

type linePlane struct {
	r   *Runtime
	idx int
}

func (p *linePlane) s() *sectionRT      { return p.r.secs[p.idx] }
func (p *linePlane) Kind() plane.Kind   { return plane.Line }
func (p *linePlane) UnitBytes() int     { return p.s().spec.Cache.LineBytes }
func (p *linePlane) CapacityUnits() int { return p.s().sec.Config().Lines() }

func (p *linePlane) ResidentUnits() int {
	n := 0
	p.s().sec.ForEachResident(func(*cache.Line) { n++ })
	return n
}

func (p *linePlane) Access(clk *sim.Clock, far uint64, buf []byte, write bool) error {
	o := p.r.ownerOf(far)
	if o == nil || o.place.Kind != PlaceSection || o.place.Section != p.idx {
		return fmt.Errorf("rt: far address %#x is not served by section %d", far, p.idx)
	}
	return p.r.sectionAccess(clk, o, far, buf, write, AccessOpts{})
}

func (p *linePlane) PrefetchBatch(clk *sim.Clock, fars []uint64) error {
	s := p.s()
	lb := s.spec.Cache.LineBytes
	seen := make(map[uint64]bool, len(fars))
	var tags []uint64
	var owners []*objectRT
	for _, far := range fars {
		t := cache.AlignDown(far, lb)
		if seen[t] {
			continue
		}
		seen[t] = true
		o := p.r.ownerOf(t)
		if o == nil || o.place.Kind != PlaceSection || o.place.Section != p.idx {
			s.pf.Dropped++
			s.mPfDropped.Inc()
			continue
		}
		if _, resident := s.sec.Peek(t); resident {
			continue
		}
		if _, inflight := s.inflight[t]; inflight {
			continue
		}
		if p.r.recoverFromWbq(clk, s, o, t, t) {
			continue
		}
		tags = append(tags, t)
		owners = append(owners, o)
	}
	p.r.issueSpeculative(clk, s, tags, owners)
	return nil
}

func (p *linePlane) Evict(clk *sim.Clock, far uint64, length int64) error {
	if length <= 0 {
		return nil
	}
	return p.r.flushSectionRange(clk, p.s(), far, far+uint64(length))
}

func (p *linePlane) Fence(clk *sim.Clock) {
	s := p.s()
	_, _ = p.r.drainWbq(clk, s)
	latest := p.r.lastFlush
	for _, t := range s.inflight {
		if t > latest {
			latest = t
		}
	}
	clk.AdvanceTo(latest)
}

func (p *linePlane) Flush(clk *sim.Clock) error {
	return p.r.flushSectionRange(clk, p.s(), 0, ^uint64(0))
}

func (p *linePlane) Stats() plane.Stats {
	s := p.s()
	st := s.sec.Stats()
	return plane.Stats{
		Accesses:       st.Hits + st.Misses,
		Hits:           st.Hits,
		Misses:         st.Misses,
		Evictions:      st.Evictions,
		Writebacks:     st.Writebacks,
		PrefetchIssued: s.pf.Issued,
		PrefetchUseful: s.pf.Useful,
	}
}

func (p *linePlane) SetTrace(tr *trace.Tracer) { p.r.SetTrace(tr) }

// flushSectionRange writes back and drops every resident line of s whose tag
// lies in [lo, hi), draining the section's write-back queue so the bytes are
// authoritative in far memory on return — the line plane's migration drain.
func (r *Runtime) flushSectionRange(clk *sim.Clock, s *sectionRT, lo, hi uint64) error {
	var tags []uint64
	s.sec.ForEachResident(func(l *cache.Line) {
		if l.Tag >= lo && l.Tag < hi {
			tags = append(tags, l.Tag)
		}
	})
	// Sorted write-back order keeps queueing on the shared link — and so
	// sim times — independent of the section's internal iteration order.
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	for _, tag := range tags {
		v, ok := s.sec.Drop(tag)
		if !ok {
			continue
		}
		delete(s.inflight, tag)
		s.evictSpec(tag)
		if !v.Dirty {
			if s.snaps != nil {
				delete(s.snaps, tag)
			}
			continue
		}
		o := r.ownerOf(tag)
		if o == nil {
			return fmt.Errorf("rt: dirty line %#x has no owning object", tag)
		}
		if s.wbq == nil {
			clk.Advance(r.cfg.Net.PerMessageOverhead)
		}
		if err := r.wbqEnqueue(clk, s, o, v.Tag, v.Data); err != nil {
			return err
		}
	}
	done, err := r.drainWbq(clk, s)
	if err != nil {
		return err
	}
	clk.AdvanceTo(done)
	return nil
}

// ObjectPlane reports which plane currently serves a bound far object
// (false for unknown or local objects).
func (r *Runtime) ObjectPlane(name string) (plane.Kind, bool) {
	o, ok := r.objs[name]
	if !ok || o.place.Kind == PlaceLocal {
		return plane.Page, false
	}
	if o.place.Kind == PlaceSection {
		return plane.Line, true
	}
	return plane.Page, true
}

// MigrateObject moves one far object to the other data plane mid-run — the
// deterministic migration protocol:
//
//  1. drain the paged plane's state for the range (dirty pages write back,
//     clean stray readahead drops),
//  2. when leaving the line plane, flush the object's lines and write-back
//     queue entries through the transport (FlushObject),
//  3. flip the placement and rebuild the owner index so every subsequent
//     access, prefetch, and dirty write-back resolves to the new plane.
//
// Every step is priced into simulated time through the normal flush paths,
// so two identical runs migrate at identical instants with identical costs.
// Requires the unified Config.Hybrid layout (page-exclusive objects).
// Migrating to the plane already serving the object is a no-op.
func (r *Runtime) MigrateObject(clk *sim.Clock, name string, to plane.Kind) error {
	if !r.cfg.Hybrid {
		return fmt.Errorf("rt: MigrateObject requires the hybrid layout (Config.Hybrid)")
	}
	o, ok := r.objs[name]
	if !ok {
		return fmt.Errorf("rt: migrate of unknown object %q", name)
	}
	if o.place.Kind == PlaceLocal {
		return fmt.Errorf("rt: migrate of local object %q", name)
	}
	from := plane.Line
	if o.place.Kind == PlaceSwap {
		from = plane.Page
	}
	if from == to {
		return nil
	}
	start := clk.Now()
	size := o.decl.SizeBytes()
	switch to {
	case plane.Page:
		if r.swapC == nil {
			return fmt.Errorf("rt: migrate %q to page plane: no swap cache (SwapPool is 0)", name)
		}
		// Shed the paged plane's strays first: pages of this range fetched
		// by readahead during line tenure are clean copies of stale far
		// bytes and must not survive into page tenure. Then push the line
		// plane's authoritative dirty state through the transport.
		if err := r.swapFlushRange(clk, o.farBase, size); err != nil {
			return err
		}
		if err := r.FlushObject(clk, name); err != nil {
			return err
		}
		o.place = Placement{Kind: PlaceSwap}
	case plane.Line:
		if o.homeSec < 0 {
			return fmt.Errorf("rt: migrate %q to line plane: object has no home section", name)
		}
		// Page tenure's dirty pages become the far image the line plane
		// will fetch from; clean pages drop.
		if err := r.swapFlushRange(clk, o.farBase, size); err != nil {
			return err
		}
		o.place = Placement{Kind: PlaceSection, Section: o.homeSec}
	default:
		return fmt.Errorf("rt: migrate %q to unknown plane %v", name, to)
	}
	r.rebuildOwnerIndex()
	if r.trc != nil {
		r.trc.Span(start, clk.Now(), "rt", "plane.migrate",
			trace.S("obj", name), trace.S("from", from.String()), trace.S("to", to.String()))
		r.reg.Counter("rt.plane.migrations").Inc()
	}
	return nil
}
