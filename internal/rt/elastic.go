package rt

import (
	"fmt"

	"mira/internal/cache"
	"mira/internal/prefetch"
	"mira/internal/sim"
	"mira/internal/trace"
)

// SetSectionScale resizes every cache section to scale × its bound size —
// the elastic-reclaim primitive behind multi-tenant serving: an idle
// tenant's runtime is shrunk so its local DRAM can back a loaded tenant's
// sections, and regrown (cold) when the tenant reactivates. Dirty resident
// lines are flushed through the write-back queue first, then every line is
// dropped and each section is rebuilt at the scaled size, so no data is
// lost and the reactivation penalty — refilling the cache over the link —
// is charged to whoever triggers the resize via clk. Scales are absolute
// (of the bound size), not cumulative. A no-op at the current scale.
func (r *Runtime) SetSectionScale(clk *sim.Clock, scale float64) error {
	if scale <= 0 {
		return fmt.Errorf("rt: SetSectionScale(%g)", scale)
	}
	if scale == r.SectionScale() {
		return nil
	}
	start := clk.Now()
	for _, s := range r.secs {
		var tags []uint64
		s.sec.ForEachResident(func(l *cache.Line) { tags = append(tags, l.Tag) })
		for _, tag := range tags {
			v, ok := s.sec.Drop(tag)
			if !ok {
				continue
			}
			delete(s.inflight, tag)
			if !v.Dirty {
				continue
			}
			o := r.ownerOf(v.Tag)
			if o == nil {
				return fmt.Errorf("rt: resize: dirty line %#x has no owning object", v.Tag)
			}
			if err := r.wbqEnqueue(clk, s, o, v.Tag, v.Data); err != nil {
				return err
			}
		}
		done, err := r.drainWbq(clk, s)
		if err != nil {
			return err
		}
		clk.AdvanceTo(done)
		// Any straggler in-flight prefetches target dropped lines; forget
		// them — and their speculative marks, which otherwise alias fresh
		// prefetches of the same tags after the rebuild.
		for tag := range s.inflight {
			delete(s.inflight, tag)
		}
		for tag := range s.specul {
			delete(s.specul, tag)
		}
		sec, err := cache.New(s.spec.Cache.Scaled(scale))
		if err != nil {
			return err
		}
		s.sec = sec
		// Re-derive the prefetch policy's in-flight window for the resized
		// cache: the install-time clamp ("half the plane's capacity") was
		// computed against the bound size, and a window wider than the
		// shrunken section would evict its own prefetches before use.
		if wc, ok := s.policy.(prefetch.WindowCapped); ok {
			wc.CapWindow(sec.Config().Lines())
		}
	}
	r.secScale = scale
	if r.trc != nil {
		r.trc.Span(start, clk.Now(), "rt", "elastic.resize",
			trace.I("pct", int64(scale*100)))
		r.reg.Counter("rt.elastic.resizes").Inc()
	}
	return nil
}

// SectionScale reports the current elastic scale (1 = the bound size).
func (r *Runtime) SectionScale() float64 {
	if r.secScale == 0 {
		return 1
	}
	return r.secScale
}

// SectionLiveBytes reports the sections' current local-memory footprint at
// the live elastic scale — what a serving-layer reclaimer balances across
// tenants.
func (r *Runtime) SectionLiveBytes() int64 {
	var t int64
	scale := r.SectionScale()
	for _, s := range r.secs {
		t += s.spec.Cache.Scaled(scale).SizeBytes
	}
	return t
}
