package harness

import (
	"testing"

	"mira/internal/apps/arraysum"
	"mira/internal/apps/dataframe"
	"mira/internal/apps/gpt2"
	"mira/internal/apps/graphtraverse"
	"mira/internal/apps/mcf"
	"mira/internal/faults"
	"mira/internal/sim"
	"mira/internal/transport"
	"mira/internal/workload"
)

// faultApps is every application in internal/apps at a small test size —
// the crash-and-recover acceptance check covers all of them.
func faultApps() map[string]workload.Workload {
	return map[string]workload.Workload{
		"arraysum":      arraysum.New(arraysum.Config{N: 1 << 13, Seed: 1}),
		"dataframe":     dataframe.New(dataframe.Config{Rows: 1 << 12, Seed: 2014}),
		"gpt2":          gpt2.New(gpt2.Config{Layers: 2, DModel: 16, DFF: 32, SeqLen: 8, Seed: 3}),
		"graphtraverse": graphtraverse.New(graphtraverse.Config{Edges: 4096, Nodes: 4096, Passes: 1, Seed: 21}),
		"mcf":           mcf.New(mcf.Config{Arcs: 2048, Nodes: 512, Iterations: 8, WalkLen: 32, Seed: 429}),
	}
}

// recoveryPolicy is generous enough that demand misses ride out a crash
// window of t0/3: once the breaker is open each probe waits out the cooldown,
// so the retry budget spans the whole window. The deadline is tight so
// silent crash-window failures are detected quickly — enough attempts to
// trip the breaker land inside the window even for microsecond-scale runs
// (a tight deadline is safe here: only injected delay counts against it).
func recoveryPolicy(t0 sim.Duration) *transport.Policy {
	p := transport.RecoveryPolicy(t0)
	// Trip after two consecutive failures so even the shortest app's crash
	// window (a few failure-detection periods wide) arms the breaker.
	p.BreakerThreshold = 2
	return &p
}

// TestCrashAndRecoverByteIdentical is the tentpole acceptance check: every
// app, run under a mid-run far-node crash (memory preserved across restart),
// recovers and produces byte-identical output — verified against the native
// oracle — with nonzero retries and breaker trips proving the fault window
// was actually exercised.
func TestCrashAndRecoverByteIdentical(t *testing.T) {
	for name, w := range faultApps() {
		t.Run(name, func(t *testing.T) {
			budget := w.FullMemoryBytes() / 3
			base, err := Run(FastSwap, w, Options{Budget: budget})
			if err != nil {
				t.Fatalf("fault-free run: %v", err)
			}
			t0 := base.Time
			fc := faults.Config{
				Seed: 7,
				Schedule: []faults.Event{
					{At: sim.Time(t0 / 3), Kind: faults.Crash},
					{At: sim.Time(2 * t0 / 3), Kind: faults.Restart},
				},
			}
			opts := Options{
				Budget:     budget,
				Verify:     true,
				Faults:     &fc,
				Resilience: recoveryPolicy(t0),
			}
			res, err := Run(FastSwap, w, opts)
			if err != nil {
				t.Fatalf("crash-and-recover run failed verification or execution: %v", err)
			}
			if res.Net.Retries == 0 {
				t.Errorf("no retries — the crash window injected nothing")
			}
			if res.Net.BreakerTrips == 0 {
				t.Errorf("breaker never tripped during the crash window")
			}
			if res.Time <= t0 {
				t.Errorf("crashed run (%v) not slower than fault-free (%v)", res.Time, t0)
			}
			// Determinism: the same seed and schedule replay identically.
			res2, err := Run(FastSwap, w, opts)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if res2.Time != res.Time || res2.Net != res.Net {
				t.Errorf("replay diverged: %v/%+v vs %v/%+v",
					res.Time, res.Net, res2.Time, res2.Net)
			}
			t.Logf("t0=%v crashed=%v retries=%d trips=%d queued=%d degradedReads=%d",
				t0, res.Time, res.Net.Retries, res.Net.BreakerTrips,
				res.Net.QueuedWritebacks, res.Net.DegradedReads)
		})
	}
}

// TestMiraRecoversFromLossyNetwork drives the full Mira pipeline (planner
// fault-free, timed run under injection) over a network that corrupts and
// drops: end-to-end checksums plus retries keep the output byte-identical.
func TestMiraRecoversFromLossyNetwork(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 4096, Nodes: 4096, Passes: 1, Seed: 21})
	fc, err := faults.Named("lossy", 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Mira, w, Options{
		Budget: w.FullMemoryBytes() / 4,
		Verify: true,
		Faults: &fc,
	})
	if err != nil {
		t.Fatalf("mira under lossy network: %v", err)
	}
	if res.Net.Corruptions == 0 {
		t.Errorf("no corruption injected — the lossy schedule exercised nothing")
	}
	if res.Net.Retries == 0 {
		t.Errorf("no retries recorded")
	}
	t.Logf("time=%v corruptions=%d retries=%d", res.Time, res.Net.Corruptions, res.Net.Retries)
}

// TestFlakyScheduleDeterministicAcrossSystems re-runs each system under the
// probabilistic "flaky" schedule: same seed, same final sim-time and
// identical resilience counters.
func TestFlakyScheduleDeterministicAcrossSystems(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 4096, Nodes: 4096, Passes: 1, Seed: 21})
	budget := w.FullMemoryBytes() / 4
	fc, err := faults.Named("flaky", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{FastSwap, Leap, AIFM} {
		opts := Options{Budget: budget, Verify: true, Faults: &fc}
		a, err := Run(sys, w, opts)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		b, err := Run(sys, w, opts)
		if err != nil {
			t.Fatalf("%s replay: %v", sys, err)
		}
		if a.Time != b.Time || a.Net != b.Net {
			t.Errorf("%s: nondeterministic under flaky schedule: %v/%+v vs %v/%+v",
				sys, a.Time, a.Net, b.Time, b.Net)
		}
		if a.Net.Retries == 0 && a.Net.Timeouts == 0 {
			t.Errorf("%s: flaky schedule injected nothing", sys)
		}
	}
}

// TestNativeNeverSeesFaults pins the golden-reference contract: native runs
// ignore the fault config entirely.
func TestNativeNeverSeesFaults(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 4096, Nodes: 4096, Passes: 1, Seed: 21})
	clean, err := Run(Native, w, Options{Budget: w.FullMemoryBytes()})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := faults.Named("chaos", 1)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(Native, w, Options{Budget: w.FullMemoryBytes(), Faults: &fc})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Time != faulted.Time {
		t.Fatalf("native time changed under faults: %v vs %v", clean.Time, faulted.Time)
	}
}
