package harness

import (
	"bytes"
	"encoding/json"
	"testing"

	"mira/internal/apps/seqscan"
	"mira/internal/trace"
)

// traceRun executes one traced seqscan run and returns the serialized trace
// and metrics.
func traceRun(t *testing.T, sys System) (string, string) {
	t.Helper()
	tr := trace.New()
	w := seqscan.New(seqscan.Config{N: 1 << 13, Seed: 1})
	opts := Options{Budget: w.FullMemoryBytes() / 4, Verify: true, Trace: tr}
	res, err := Run(sys, w, opts)
	if err != nil {
		t.Fatalf("%s: %v", sys, err)
	}
	if res.Failed {
		t.Fatalf("%s failed: %s", sys, res.FailReason)
	}
	var tb, mb bytes.Buffer
	if err := tr.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := tr.Registry().WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.String(), mb.String()
}

// TestTraceDeterminism: two identical runs must serialize byte-identical
// traces and metrics — the event layer is driven entirely by the virtual
// clock, with per-thread buffers merged in a stable order. (The CI
// determinism job additionally runs this test twice in one process, so map
// iteration and scheduling noise across invocations is covered too.)
func TestTraceDeterminism(t *testing.T) {
	for _, sys := range []System{Mira, FastSwap} {
		t1, m1 := traceRun(t, sys)
		t2, m2 := traceRun(t, sys)
		if t1 != t2 {
			t.Fatalf("%s: traces differ across identical runs", sys)
		}
		if m1 != m2 {
			t.Fatalf("%s: metrics differ across identical runs", sys)
		}
	}
}

// TestTraceWellFormed: the emitted files parse as JSON, the trace is in
// Chrome trace-event object format, and the run's data path actually showed
// up in both.
func TestTraceWellFormed(t *testing.T) {
	tj, mj := traceRun(t, Mira)

	var tdoc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(tj), &tdoc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if tdoc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit %q", tdoc.DisplayTimeUnit)
	}
	cats := map[string]bool{}
	for _, e := range tdoc.TraceEvents {
		cats[e.Cat] = true
	}
	for _, want := range []string{"rt", "net", "planner"} {
		if !cats[want] {
			t.Fatalf("no %q events in trace (cats: %v)", want, cats)
		}
	}

	var mdoc struct {
		Counters   map[string]int64           `json:"counters"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(mj), &mdoc); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	if mdoc.Counters["net.ops{link=net}"] == 0 {
		t.Fatalf("no transport ops counted: %v", mdoc.Counters)
	}
	found := false
	for name := range mdoc.Counters {
		if len(name) > 10 && name[:10] == "cache.hit{" && mdoc.Counters[name] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cache hits counted: %v", mdoc.Counters)
	}
}

// TestTraceDisabledIsInert: with no tracer attached nothing changes, and a
// nil tracer's writers emit valid empty documents.
func TestTraceDisabledIsInert(t *testing.T) {
	w := seqscan.New(seqscan.Config{N: 1 << 10, Seed: 1})
	res, err := Run(Mira, w, Options{Budget: w.FullMemoryBytes() / 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatal(res.FailReason)
	}
	var tr *trace.Tracer
	var tb bytes.Buffer
	if err := tr.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(tb.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer output not JSON: %v", err)
	}
}
