// Prefetch-policy race runners: one cell of BENCH_prefetch.json is one
// (policy, plane, app) triple. The page plane runs the workload on a
// uniform swap configuration (every object paged, FastSwap-calibrated
// fault path) with the policy installed as the swap prefetcher; the line
// plane runs the planner's accepted sectioned configuration with the
// policy installed on every cache section's demand-miss stream.
//
// Line-plane fairness: every cell shares ONE accepted plan per app — the
// planner runs once with default techniques, and the policy variants are
// derived by re-applying codegen with the statement emission altered
// ("programmed" suppresses the compiled Prefetch/BatchPrefetch stream and
// lets the access-program runner cover residency; the online family
// strips prefetch and the Native conversion that depended on it). Section
// placements, line sizes, and budgets are identical across cells, so
// elapsed-time deltas isolate the prefetch policy.
package harness

import (
	"fmt"

	"mira/internal/analysis"
	"mira/internal/baselines/fastswap"
	"mira/internal/codegen"
	"mira/internal/farmem"
	"mira/internal/planner"
	"mira/internal/prefetch"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/swap"
	"mira/internal/workload"
)

// RunPagePolicy races one policy on the page plane: a uniform swap
// configuration (the FastSwap datapath) with spec's policy as the swap
// prefetcher. "compiled" is rejected — there is no compiled prefetch
// stream on the page plane.
func RunPagePolicy(w workload.Workload, opts Options, spec prefetch.Spec) (Result, error) {
	opts = opts.withDefaults()
	if spec.Policy == prefetch.Compiled {
		return Result{}, fmt.Errorf("harness: policy %q has no page-plane arm", spec.Policy)
	}
	prog := w.Program()
	var local int64
	for _, o := range prog.Objects {
		if o.Local {
			local += o.SizeBytes()
		}
	}
	pool := opts.Budget - local
	if pool <= 0 {
		return Result{}, fmt.Errorf("harness: local objects (%d bytes) exceed budget %d", local, opts.Budget)
	}
	cfg := rt.Config{
		LocalBudget: opts.Budget,
		SwapPool:    pool,
		Placements:  map[string]rt.Placement{},
		Net:         opts.Net,
		SwapCfg: swap.Config{
			MajorFaultOverhead: 4500 * sim.Nanosecond,
			MinorFaultOverhead: 1000 * sim.Nanosecond,
			BatchPrefetch:      !opts.NoBatching,
		},
		Faults:              opts.Faults,
		Resilience:          opts.Resilience,
		WritebackQueueLines: opts.wbqLines(),
	}
	if co := opts.clusterOpts(true); co != nil {
		cfg.Cluster, cfg.Faults = co, nil
	}
	node := farmem.NewNode(opts.NodeCfg)
	r, err := rt.New(cfg, node)
	if err != nil {
		return Result{}, err
	}
	if err := r.Bind(prog); err != nil {
		return Result{}, err
	}
	var program []int64
	if spec.Policy == "programmed" {
		// Lower the IR's access phases to page numbers; swap-placed
		// objects only (everything here).
		program = analysis.LowerPhases(analysis.AccessProgram(prog), r.PageUnit)
		spec.Window = clampWindow(spec.Window, int(pool/swap.PageBytes))
	}
	pol, err := prefetch.Build(spec, program)
	if err != nil {
		return Result{}, err
	}
	r.SwapPrefetcher(prefetch.PageAdapter{P: pol})
	if err := w.Init(r); err != nil {
		return Result{}, err
	}
	return runRT(System("page/"+spec.Policy), w, prog, r, opts)
}

// clampWindow bounds a programmed runner's in-flight window to half the
// plane's capacity (in units): a window wider than the pool evicts its own
// prefetches before their first touch.
func clampWindow(window, capacity int) int {
	if window == 0 {
		window = prefetch.DefaultWindow
	}
	if half := capacity / 2; half >= 1 && window > half {
		return half
	}
	return window
}

// RunLinePolicy races one policy on the line plane. For racing several
// policies against the same accepted plan, RunLinePolicies amortizes the
// planning run.
func RunLinePolicy(w workload.Workload, opts Options, spec prefetch.Spec) (Result, error) {
	res, err := RunLinePolicies(w, opts, []prefetch.Spec{spec})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// RunLinePolicies plans w once (default techniques) and runs one cell per
// spec against the accepted sectioned configuration: "compiled" executes
// the planner's program as accepted; every other policy executes a derived
// program (see the package comment) with one fresh policy instance
// installed per cache section. The swap pool keeps the planner's standard
// readahead in every cell so only the section policies differ.
func RunLinePolicies(w workload.Workload, opts Options, specs []prefetch.Spec) ([]Result, error) {
	opts = opts.withDefaults()
	popts := opts.Planner
	popts.LocalBudget = opts.Budget
	if popts.Net.BytesPerSecond == 0 {
		popts.Net = opts.Net
	}
	if popts.NodeCfg.Capacity == 0 {
		popts.NodeCfg = opts.NodeCfg
	}
	popts.WritebackQueueLines = opts.wbqLines()
	if co := opts.clusterOpts(false); co != nil {
		popts.Cluster = co
	}
	pres, err := planner.Plan(w, popts)
	if err != nil {
		return nil, err
	}
	// Variant programs are compiled lazily and cached: the online policies
	// all share the prefetch-stripped program.
	progs := map[string]*programVariant{}
	variantFor := func(policy string) (*programVariant, error) {
		key := variantKey(policy)
		if v, ok := progs[key]; ok {
			return v, nil
		}
		v, err := buildVariant(key, w, pres)
		if err != nil {
			return nil, err
		}
		progs[key] = v
		return v, nil
	}
	var out []Result
	for _, spec := range specs {
		v, err := variantFor(spec.Policy)
		if err != nil {
			return nil, err
		}
		res, err := runLineCell(w, opts, pres, v, spec)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// programVariant is one compiled rendering of the accepted plan: the plan
// to re-apply (nil = run the accepted program unchanged), plus the access
// phases the programmed runner lowers per section.
type programVariant struct {
	prog   *codegen.Plan
	phases []analysis.Phase
}

// variantKey buckets policies by the program text they execute.
func variantKey(policy string) string {
	switch policy {
	case prefetch.Compiled:
		return prefetch.Compiled
	case "programmed":
		return "programmed"
	default:
		return "online"
	}
}

// buildVariant derives the variant's executable program from the accepted
// plan without re-planning.
func buildVariant(key string, w workload.Workload, pres *planner.Result) (*programVariant, error) {
	v := &programVariant{}
	switch key {
	case prefetch.Compiled:
		v.prog = nil // sentinel: run pres.Program as accepted
	case "programmed":
		plan := clonePlan(pres.Plan)
		plan.SuppressPrefetchStmts = true
		v.prog = plan
		v.phases = analysis.AccessProgram(w.Program())
	default: // online family: no compiled stream, no proven residency
		plan := clonePlan(pres.Plan)
		for _, op := range plan.Objects {
			op.PrefetchDistance = 0
			op.BatchLines = 0
			op.ChainedFrom = ""
			op.Native = false
		}
		plan.BatchFusedPrefetch = false
		v.prog = plan
	}
	return v, nil
}

// clonePlan deep-copies a codegen plan so variants can edit decisions.
func clonePlan(p *codegen.Plan) *codegen.Plan {
	out := *p
	out.Objects = make(map[string]*codegen.ObjectPlan, len(p.Objects))
	for name, op := range p.Objects {
		cp := *op
		out.Objects[name] = &cp
	}
	return &out
}

// runLineCell executes one (policy, app) line-plane cell on a fresh
// runtime bound to the accepted configuration.
func runLineCell(w workload.Workload, opts Options, pres *planner.Result, v *programVariant, spec prefetch.Spec) (Result, error) {
	prog := pres.Program
	if v.prog != nil {
		var err error
		prog, err = codegen.Apply(w.Program(), v.prog)
		if err != nil {
			return Result{}, err
		}
	}
	cfg := pres.Config
	cfg.Faults = opts.Faults
	cfg.Resilience = opts.Resilience
	if co := opts.clusterOpts(true); co != nil {
		cfg.Cluster, cfg.Faults = co, nil
	}
	node := farmem.NewNode(opts.NodeCfg)
	r, err := rt.New(cfg, node)
	if err != nil {
		return Result{}, err
	}
	if err := r.Bind(prog); err != nil {
		return Result{}, err
	}
	// Match the planner's timing environment on the swap pool in every
	// cell; the raced policies live on the sections.
	r.SwapPrefetcher(fastswap.Readahead{N: 2})
	if spec.Policy != prefetch.Compiled {
		for i := 0; i < r.NumSections(); i++ {
			var program []int64
			secSpec := spec
			if spec.Policy == "programmed" {
				idx := i
				program = analysis.LowerPhases(v.phases, func(obj string, elem int64) (int64, bool) {
					sec, unit, ok := r.LineUnit(obj, elem)
					if !ok || sec != idx {
						return 0, false
					}
					return unit, true
				})
				secSpec.Window = clampWindow(spec.Window, r.SectionConfig(i).Lines())
			}
			pol, err := prefetch.Build(secSpec, program)
			if err != nil {
				return Result{}, err
			}
			if err := r.InstallSectionPolicy(i, pol); err != nil {
				return Result{}, err
			}
		}
	}
	if err := w.Init(r); err != nil {
		return Result{}, err
	}
	res, err := runRT(System("line/"+spec.Policy), w, prog, r, opts)
	if err != nil {
		return Result{}, err
	}
	res.PlanResult = pres
	return res, nil
}
