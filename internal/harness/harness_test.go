package harness

import (
	"fmt"
	"testing"

	"mira/internal/apps/graphtraverse"
	"mira/internal/baselines/aifm"
	"mira/internal/sim"
	"mira/internal/workload"
)

func testWorkload() *graphtraverse.Workload {
	return graphtraverse.New(graphtraverse.Config{Edges: 4096, Nodes: 4096, Passes: 1, Seed: 21})
}

func TestAllSystemsProduceIdenticalResults(t *testing.T) {
	w := testWorkload()
	budget := w.FullMemoryBytes() / 4
	for _, sys := range []System{Native, Mira, MiraSwap, FastSwap, Leap, AIFM} {
		res, err := Run(sys, w, Options{Budget: budget, Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Failed {
			t.Logf("%s failed to execute at this budget: %s", sys, res.FailReason)
			continue
		}
		if res.Time <= 0 {
			t.Fatalf("%s: zero time", sys)
		}
		t.Logf("%-10s %v", sys, res.Time)
	}
}

func TestPaperOrderingAtQuarterMemory(t *testing.T) {
	// The paper's headline shape on the graph example (Fig. 5): Mira
	// beats FastSwap, Leap, and AIFM; native is the floor.
	w := testWorkload()
	budget := w.FullMemoryBytes() / 4
	times := map[System]sim.Duration{}
	for _, sys := range []System{Native, Mira, FastSwap, Leap, AIFM} {
		res, err := Run(sys, w, Options{Budget: budget})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Failed {
			t.Fatalf("%s unexpectedly failed: %s", sys, res.FailReason)
		}
		times[sys] = res.Time
	}
	if times[Mira] >= times[FastSwap] {
		t.Errorf("Mira (%v) not faster than FastSwap (%v)", times[Mira], times[FastSwap])
	}
	if times[Mira] >= times[Leap] {
		t.Errorf("Mira (%v) not faster than Leap (%v)", times[Mira], times[Leap])
	}
	if times[Mira] >= times[AIFM] {
		t.Errorf("Mira (%v) not faster than AIFM (%v)", times[Mira], times[AIFM])
	}
	if times[Native] >= times[Mira] {
		t.Errorf("native (%v) not the floor (Mira %v)", times[Native], times[Mira])
	}
	t.Logf("native=%v mira=%v fastswap=%v leap=%v aifm=%v",
		times[Native], times[Mira], times[FastSwap], times[Leap], times[AIFM])
}

func TestNativeInsensitiveToBudget(t *testing.T) {
	w := testWorkload()
	a, err := Run(Native, w, Options{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Native, w, Options{Budget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Fatalf("native time depends on budget: %v vs %v", a.Time, b.Time)
	}
}

func TestUnknownSystem(t *testing.T) {
	if _, err := Run(System("bogus"), testWorkload(), Options{Budget: 1 << 20}); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestDeterminism(t *testing.T) {
	w := testWorkload()
	budget := w.FullMemoryBytes() / 3
	var prev sim.Duration
	for i := 0; i < 3; i++ {
		res, err := Run(FastSwap, testWorkload(), Options{Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Time != prev {
			t.Fatalf("run %d: %v != %v", i, res.Time, prev)
		}
		prev = res.Time
	}
	_ = w
}

// failingWorkload wraps the graph workload with a Verify that always
// rejects — the harness must surface verification failures as errors, per
// system, so a buggy runtime can never silently report a time.
type failingWorkload struct {
	*graphtraverse.Workload
}

func (failingWorkload) Verify(workload.ObjectDumper) error {
	return fmt.Errorf("intentional verification failure")
}

func TestVerificationFailureSurfaces(t *testing.T) {
	w := failingWorkload{testWorkload()}
	for _, sys := range []System{Native, MiraSwap, FastSwap, Leap, AIFM} {
		_, err := Run(sys, w, Options{Budget: w.FullMemoryBytes(), Verify: true})
		if err == nil {
			t.Errorf("%s: failing verifier accepted", sys)
		}
	}
}

func TestVerifySkippedWhenDisabled(t *testing.T) {
	w := failingWorkload{testWorkload()}
	if _, err := Run(Native, w, Options{Budget: w.FullMemoryBytes()}); err != nil {
		t.Fatalf("verify ran despite being disabled: %v", err)
	}
}

func TestAIFMOptionsPassthrough(t *testing.T) {
	w := testWorkload()
	lean, err := Run(AIFM, w, Options{Budget: w.FullMemoryBytes(), AIFM: aifm.Options{MetaPerObject: 8}})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Run(AIFM, w, Options{Budget: w.FullMemoryBytes(), AIFM: aifm.Options{MetaPerObject: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if !heavy.Failed && !lean.Failed && heavy.Time <= lean.Time {
		t.Fatalf("heavier metadata not slower/failed: %v vs %v", heavy.Time, lean.Time)
	}
}
