package harness

import (
	"bytes"
	"fmt"
	"testing"

	"mira/internal/apps/arraysum"
	"mira/internal/apps/graphtraverse"
	"mira/internal/baselines/fastswap"
	"mira/internal/baselines/leap"
	"mira/internal/cluster"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/transport"
	"mira/internal/workload"
)

// testClusterOpts shards across n nodes with a small stripe so even the
// test-sized heaps actually spread, and R=2 whenever there is a second node
// to replicate onto.
func testClusterOpts(n int) *cluster.Options {
	r := 2
	if n < 2 {
		r = 1
	}
	return &cluster.Options{
		Nodes:       n,
		Replicas:    r,
		Seed:        1,
		StripeBytes: 4096,
		NodeCfg:     farmem.DefaultNodeConfig(),
		Net:         netmodel.DefaultConfig(),
	}
}

// clusterDump builds sys over an n-node pool, runs w, and dumps every object
// (the cluster analogue of runAndDump).
func clusterDump(t *testing.T, sys System, w *randomWorkload, budget int64, n int) (map[string][]byte, error) {
	t.Helper()
	co := testClusterOpts(n)
	var prog *ir.Program
	var r *rt.Runtime
	switch sys {
	case Mira:
		res, err := planner.Plan(w, planner.Options{LocalBudget: budget, MaxIterations: 3, Cluster: co})
		if err != nil {
			return nil, err
		}
		prog = res.Program
		r, err = rt.New(res.Config, nil) // cluster mode: the pool replaces the node
		if err != nil {
			return nil, err
		}
		if err := r.Bind(prog); err != nil {
			return nil, err
		}
		if err := w.Init(r); err != nil {
			return nil, err
		}
	case FastSwap:
		prog = w.Program()
		var err error
		r, err = fastswap.New(w, fastswap.Options{LocalBudget: budget, Cluster: co})
		if err != nil {
			return nil, err
		}
	case Leap:
		prog = w.Program()
		var err error
		r, err = leap.New(w, leap.Options{LocalBudget: budget, Cluster: co})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unsupported %s", sys)
	}
	ex, err := exec.New(prog, r, exec.Options{})
	if err != nil {
		return nil, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return nil, err
	}
	if err := r.FlushAll(clk); err != nil {
		return nil, err
	}
	return dumpAll(t, w, r), nil
}

// TestClusterDifferentialByteIdentical: random programs must compute
// byte-identical final state whether far memory is one node or a sharded,
// replicated pool — placement, striping, and replication are invisible to
// program semantics. Covers node counts 1, 2, and 4.
func TestClusterDifferentialByteIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := generate(seed)
			budget := w.FullMemoryBytes() / 3
			ref, err := runAndDump(t, Native, w, budget)
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			for _, n := range []int{1, 2, 4} {
				for _, sys := range []System{Mira, FastSwap, Leap} {
					got, err := clusterDump(t, sys, w, budget, n)
					if err != nil {
						t.Fatalf("%s nodes=%d: %v", sys, n, err)
					}
					for name, want := range ref {
						if !bytes.Equal(got[name], want) {
							t.Fatalf("%s nodes=%d: object %q diverges from native", sys, n, name)
						}
					}
				}
			}
		})
	}
}

// TestClusterAppsVerifyAcrossNodeCounts drives the harness-level -nodes
// plumbing end to end: real apps verified against their oracles at node
// counts 1, 2, and 4, with per-node stats reported.
func TestClusterAppsVerifyAcrossNodeCounts(t *testing.T) {
	ws := map[string]func() workload.Workload{
		"arraysum": func() workload.Workload { return arraysum.New(arraysum.Config{N: 1 << 13, Seed: 1}) },
		"graphtraverse": func() workload.Workload {
			return graphtraverse.New(graphtraverse.Config{Edges: 4096, Nodes: 4096, Passes: 1, Seed: 21})
		},
	}
	for name, mk := range ws {
		for _, n := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/nodes%d", name, n), func(t *testing.T) {
				w := mk()
				for _, sys := range []System{Mira, FastSwap} {
					res, err := Run(sys, w, Options{
						Budget:   w.FullMemoryBytes() / 3,
						Verify:   true,
						Nodes:    n,
						Replicas: 2,
					})
					if err != nil {
						t.Fatalf("%s: %v", sys, err)
					}
					if len(res.Cluster) != n {
						t.Fatalf("%s: %d node stats for %d nodes", sys, len(res.Cluster), n)
					}
					var reads, writes int64
					for _, ns := range res.Cluster {
						reads += ns.Reads
						writes += ns.Writes
					}
					if reads == 0 && writes == 0 {
						t.Fatalf("%s: cluster run recorded no node traffic", sys)
					}
				}
			})
		}
	}
}

// failFastPolicy makes each cluster member give up immediately: in a
// replicated pool the replicas are the retry, and transport-internal
// persistence would mask the failover path this test exists to exercise.
func failFastPolicy() *transport.Policy {
	p := transport.DefaultPolicy()
	p.MaxAttempts = 1
	p.BreakerThreshold = 2
	p.BreakerCooldown = 50 * sim.Microsecond
	return &p
}

// TestClusterCrashWipeFailoverRecovers is the multi-node acceptance check:
// kill one far node mid-run — with memory loss — and the run must still
// produce byte-identical output by failing reads over to the surviving
// replica (R=2) and re-syncing the wiped node after restart.
func TestClusterCrashWipeFailoverRecovers(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 4096, Nodes: 4096, Passes: 1, Seed: 21})
	budget := w.FullMemoryBytes() / 3
	base, err := Run(FastSwap, w, Options{Budget: budget, Nodes: 3, Replicas: 2, StripeBytes: 4096})
	if err != nil {
		t.Fatalf("fault-free cluster run: %v", err)
	}
	t0 := base.Time
	const victim = 0
	fc := faults.Config{
		Seed: 7,
		Schedule: []faults.Event{
			{At: sim.Time(t0 / 3), Kind: faults.Crash, LoseMemory: true},
			{At: sim.Time(2 * t0 / 3), Kind: faults.Restart},
		},
	}
	opts := Options{
		Budget:      budget,
		Verify:      true,
		Nodes:       3,
		Replicas:    2,
		StripeBytes: 4096,
		FaultNode:   victim,
		Faults:      &fc,
		Resilience:  failFastPolicy(),
	}
	res, err := Run(FastSwap, w, opts)
	if err != nil {
		t.Fatalf("crash-wipe run failed verification or execution: %v", err)
	}
	if got := res.Cluster[victim].Faults.Wipes; got == 0 {
		t.Error("victim never wiped — the schedule exercised nothing")
	}
	var failovers, resyncs int64
	for _, ns := range res.Cluster {
		failovers += ns.Failovers
		resyncs += ns.Resyncs
	}
	if failovers == 0 {
		t.Error("no reads failed over to a replica during the crash window")
	}
	if resyncs == 0 {
		t.Error("the wiped node was never re-synced from its replicas")
	}
	// Determinism: the same seed and schedule replay identically.
	res2, err := Run(FastSwap, w, opts)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res2.Time != res.Time {
		t.Errorf("replay time diverged: %v vs %v", res.Time, res2.Time)
	}
	for i := range res.Cluster {
		if res2.Cluster[i] != res.Cluster[i] {
			t.Errorf("node %d stats diverged on replay:\n  %+v\nvs\n  %+v",
				i, res.Cluster[i], res2.Cluster[i])
		}
	}
	t.Logf("t0=%v crashed=%v failovers=%d resyncs=%d wipes=%d",
		t0, res.Time, failovers, resyncs, res.Cluster[victim].Faults.Wipes)
}

// TestClusterAIFMUnsupported pins that AIFM — which models a single far
// node's per-object metadata — refuses a multi-node request instead of
// silently ignoring it.
func TestClusterAIFMUnsupported(t *testing.T) {
	w := arraysum.New(arraysum.Config{N: 1 << 10, Seed: 1})
	if _, err := Run(AIFM, w, Options{Budget: w.FullMemoryBytes() / 2, Nodes: 2}); err == nil {
		t.Fatal("aifm accepted a cluster request")
	}
}
