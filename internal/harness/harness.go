// Package harness runs one workload under one far-memory system at one
// local-memory budget — the inner loop of every figure in the paper's
// evaluation. Systems: native (full local memory; the normalization
// denominator of all figures), Mira (full planner), Mira's swap-only
// baseline, FastSwap, Leap, and AIFM.
package harness

import (
	"fmt"

	"mira/internal/baselines/aifm"
	"mira/internal/baselines/fastswap"
	"mira/internal/baselines/leap"
	"mira/internal/cluster"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/planner"
	"mira/internal/prefetch"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/transport"
	"mira/internal/workload"
)

// System identifies a far-memory system.
type System string

// The systems the evaluation compares.
const (
	Native   System = "native"
	Mira     System = "mira"
	MiraSwap System = "mira-swap" // Mira's iteration-0 generic swap config
	FastSwap System = "fastswap"
	Leap     System = "leap"
	AIFM     System = "aifm"
)

// AllSystems lists the far-memory systems (excluding native).
var AllSystems = []System{Mira, FastSwap, Leap, AIFM}

// Options tunes a harness run.
type Options struct {
	// Budget is the local memory in bytes (ignored for Native).
	Budget int64
	// Net overrides the interconnect model.
	Net netmodel.Config
	// NodeCfg overrides the far node.
	NodeCfg farmem.NodeConfig
	// Planner customizes Mira's planning (budget is overridden by
	// Budget).
	Planner planner.Options
	// Verify checks workload output after the run when the workload
	// implements workload.Verifier.
	Verify bool
	// AIFM customizes the AIFM baseline's library model (budget and
	// interconnect are overridden by Budget/Net).
	AIFM aifm.Options
	// Faults injects the deterministic fault schedule into the run's
	// transport (nil: fault-free). Native runs never see faults — they
	// are the golden reference the faulted runs are compared against.
	Faults *faults.Config
	// Resilience overrides the transport's retry/deadline/breaker policy.
	Resilience *transport.Policy
	// Nodes, when > 0, shards far memory across that many far nodes behind
	// a cluster.Pool (placement, replication, failover). Zero keeps the
	// classic single-node data path. Native runs ignore it — they hold
	// everything local and remain the golden reference either way.
	Nodes int
	// Replicas is the replication factor R in cluster mode (default 1:
	// each placement range lives on R nodes, writes fan out to all of
	// them, reads fail over between them).
	Replicas int
	// FaultNode selects which cluster node receives Options.Faults when
	// Nodes > 0 (clamped to the node range). The other nodes stay clean —
	// that asymmetry is what makes replicated failover observable.
	FaultNode int
	// StripeBytes overrides the cluster placement granularity (0:
	// cluster.DefaultStripeBytes). Tests use small stripes so test-sized
	// heaps actually spread across nodes.
	StripeBytes uint64
	// NoBatching disables the vectored-I/O data path end to end: Mira's
	// doorbell-batched prefetch and async write-back pipeline, and Leap's
	// batched prefetch gather — the PR 2 data path, kept for A/B
	// benchmarking.
	NoBatching bool
	// WritebackQueueLines overrides the runtime's async write-back queue
	// bound (0 = default, negative = disabled). NoBatching forces it off
	// unless set explicitly.
	WritebackQueueLines int
	// Trace, when non-nil, records the run's events and metrics into the
	// deterministic tracing layer. For Mira it attaches to the timed
	// re-run of the accepted configuration (and to the planner's
	// iteration timeline), never to the planner's internal sampling runs.
	Trace *trace.Tracer
	// Prefetch, when non-nil, replaces the system's stock prefetching with
	// the named zoo policy: Mira runs it on the line plane (one instance
	// per cache section, via RunLinePolicy); the swap systems (mira-swap,
	// fastswap, leap) run it on the page plane (via RunPagePolicy).
	Prefetch *prefetch.Spec
	// Compress selects the wire-compression mode for Mira and MiraSwap
	// runs ("", "off", "on", "auto" — see planner.Options.Compress). The
	// other systems model stock far-memory stacks and ignore it.
	Compress string
	// Tier, when non-nil, puts a simulated SSD capacity tier under every
	// cluster node's DRAM (hot granules in DRAM, cold ones demoted to
	// flash and promoted back on access). Requires Nodes > 0.
	Tier *cluster.TierConfig
	// Plane selects Mira's data-plane mode ("page", "line", or "hybrid" —
	// see planner.Options.Plane). Mira-only, single-node, and mutually
	// exclusive with Prefetch: the zoo policies pick their own plane.
	Plane string
	// Offload selects the scatter-gather offload mode for Mira runs ("",
	// "off", "on", "auto" — see planner.Options.Offload).
	Offload string
	// OffloadChunk overrides the offload engine's streaming chunk size in
	// bytes (0 = netmodel.DefaultStreamChunk).
	OffloadChunk int
}

// wbqLines resolves the write-back queue knob: NoBatching runs the PR 2
// data path, which had no queue.
func (o Options) wbqLines() int {
	if o.NoBatching && o.WritebackQueueLines == 0 {
		return -1
	}
	return o.WritebackQueueLines
}

func (o Options) faultsEnabled() bool { return o.Faults != nil && o.Faults.Enabled() }

// clusterOpts translates the harness knobs into cluster.Options, or nil in
// single-node mode. withFaults moves Options.Faults onto the chosen node's
// fault domain (planning runs pass false: planning is offline and
// fault-free).
func (o Options) clusterOpts(withFaults bool) *cluster.Options {
	if o.Nodes <= 0 {
		return nil
	}
	co := &cluster.Options{
		Nodes:       o.Nodes,
		Replicas:    o.Replicas,
		Seed:        1,
		StripeBytes: o.StripeBytes,
		NodeCfg:     o.NodeCfg,
		Net:         o.Net,
		Tier:        o.Tier,
	}
	if o.Resilience != nil {
		pol := *o.Resilience
		co.Policy = &pol
	}
	if withFaults && o.faultsEnabled() {
		at := o.FaultNode
		if at < 0 {
			at = 0
		}
		if at >= o.Nodes {
			at = o.Nodes - 1
		}
		co.Faults = make([]*faults.Config, o.Nodes)
		fc := *o.Faults
		co.Faults[at] = &fc
	}
	return co
}

// Result is one run's outcome.
type Result struct {
	System System
	Time   sim.Duration
	// Failed marks systems that could not execute at this budget (AIFM
	// metadata exhaustion, Fig. 18) — plotted as absent in the paper.
	Failed bool
	// FailReason explains a failure.
	FailReason string
	// PlanResult carries the planner record for Mira runs.
	PlanResult *planner.Result
	// Net reports the transport's resilience counters for the timed run
	// (retries, timeouts, breaker trips, degraded-mode activity); summed
	// across node links in cluster mode.
	Net transport.Stats
	// Cluster carries the per-node counters when the run used a cluster
	// (nil otherwise), ordered by node ID.
	Cluster []cluster.NodeStats
	// Messages counts link-level transfers for the timed run (summed
	// across node links in cluster mode) — the metric vectored I/O
	// collapses.
	Messages int64
	// BytesMoved counts the bytes that crossed the interconnect.
	BytesMoved int64
	// BytesOnWire equals BytesMoved: what actually crossed, post-codec.
	// Named separately so reports read next to BytesEffective.
	BytesOnWire int64
	// BytesEffective adds back the bytes the wire codecs kept off the
	// link (transport.Stats.WireSaved): the pre-compression data volume.
	// Equal to BytesOnWire when compression is off.
	BytesEffective int64
	// Prefetch aggregates the run's prefetch efficacy counters across both
	// planes (cache sections + swap pool).
	Prefetch prefetch.Efficacy
	// DemandMisses counts the demand misses the run still paid (section
	// misses + swap major faults) — the denominator of prefetch coverage.
	DemandMisses int64
}

func (o Options) withDefaults() Options {
	if o.Net.BytesPerSecond == 0 {
		o.Net = netmodel.DefaultConfig()
	}
	if o.NodeCfg.Capacity == 0 {
		o.NodeCfg = farmem.DefaultNodeConfig()
	}
	return o
}

// Run executes w on sys.
func Run(sys System, w workload.Workload, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if opts.Plane != "" {
		if sys != Mira {
			return Result{}, fmt.Errorf("harness: -plane selects Mira's data plane; %s has only one", sys)
		}
		if opts.Prefetch != nil {
			return Result{}, fmt.Errorf("harness: -plane and -prefetch are mutually exclusive (zoo policies pick their own plane)")
		}
		if opts.Nodes > 0 {
			return Result{}, fmt.Errorf("harness: -plane uses the unified hybrid layout, which is single-node (drop -nodes)")
		}
	}
	if opts.Prefetch != nil {
		switch sys {
		case Mira:
			return RunLinePolicy(w, opts, *opts.Prefetch)
		case MiraSwap, FastSwap, Leap:
			return RunPagePolicy(w, opts, *opts.Prefetch)
		default:
			return Result{}, fmt.Errorf("harness: -prefetch is not supported for %s", sys)
		}
	}
	switch sys {
	case Native:
		return runNative(w, opts)
	case Mira, MiraSwap:
		return runMira(sys, w, opts)
	case FastSwap, Leap:
		return runSwapBaseline(sys, w, opts)
	case AIFM:
		return runAIFM(w, opts)
	default:
		return Result{}, fmt.Errorf("harness: unknown system %q", sys)
	}
}

// runRT executes prog over an already-bound rt runtime and verifies. For
// Mira this must be the planner's transformed program — running the
// workload's original would silently drop the compiled-in prefetch and
// eviction instrumentation.
func runRT(sys System, w workload.Workload, prog *ir.Program, r *rt.Runtime, opts Options) (Result, error) {
	r.SetTrace(opts.Trace)
	ex, err := exec.New(prog, r, exec.Options{Params: w.Params()})
	if err != nil {
		return Result{}, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return Result{}, err
	}
	if err := r.FlushAll(clk); err != nil {
		return Result{}, err
	}
	if err := verify(w, r, opts); err != nil {
		return Result{}, fmt.Errorf("harness: %s: %w", sys, err)
	}
	ns := r.NetStats()
	moved := r.Link().BytesMoved()
	return Result{
		System:         sys,
		Time:           clk.Now().Sub(0),
		Net:            ns,
		Cluster:        r.ClusterStats(),
		Messages:       r.Link().Messages(),
		BytesMoved:     moved,
		BytesOnWire:    moved,
		BytesEffective: moved + ns.WireSaved,
		Prefetch:       r.PrefetchStats(),
		DemandMisses:   r.MissCount(),
	}, nil
}

func verify(w workload.Workload, d workload.ObjectDumper, opts Options) error {
	if !opts.Verify {
		return nil
	}
	v, ok := w.(workload.Verifier)
	if !ok {
		return nil
	}
	return v.Verify(d)
}

// runNative executes with every object in local memory: the figures'
// normalization denominator ("native execution on full local memory").
func runNative(w workload.Workload, opts Options) (Result, error) {
	prog := w.Program()
	placements := map[string]rt.Placement{}
	for _, o := range prog.Objects {
		placements[o.Name] = rt.Placement{Kind: rt.PlaceLocal}
	}
	var full int64
	for _, o := range prog.Objects {
		full += o.SizeBytes()
	}
	cfg := rt.Config{
		LocalBudget: full + (1 << 20),
		Placements:  placements,
		Net:         opts.Net,
	}
	node := farmem.NewNode(opts.NodeCfg)
	r, err := rt.New(cfg, node)
	if err != nil {
		return Result{}, err
	}
	if err := r.Bind(prog); err != nil {
		return Result{}, err
	}
	if err := w.Init(r); err != nil {
		return Result{}, err
	}
	return runRT(Native, w, prog, r, opts)
}

// runMira plans (or, for MiraSwap, stops at iteration 0) and reports the
// accepted configuration's time.
func runMira(sys System, w workload.Workload, opts Options) (Result, error) {
	popts := opts.Planner
	popts.LocalBudget = opts.Budget
	if popts.Net.BytesPerSecond == 0 {
		popts.Net = opts.Net
	}
	if popts.NodeCfg.Capacity == 0 {
		popts.NodeCfg = opts.NodeCfg
	}
	if sys == MiraSwap {
		popts.DisableSeparation = true
	}
	if opts.Plane != "" {
		popts.Plane = opts.Plane
	}
	popts.WritebackQueueLines = opts.wbqLines()
	if opts.Compress != "" {
		popts.Compress = opts.Compress
	}
	if opts.Offload != "" {
		popts.Offload = opts.Offload
	}
	if opts.OffloadChunk != 0 {
		popts.OffloadChunk = opts.OffloadChunk
	}
	if opts.NoBatching {
		if popts.Techniques == (planner.TechniqueMask{}) {
			popts.Techniques = planner.DefaultTechniques()
		}
		popts.Techniques.NoBatching = true
	}
	if co := opts.clusterOpts(false); co != nil {
		popts.Cluster = co
	}
	popts.Trace = opts.Trace
	res, err := planner.Plan(w, popts)
	if err != nil {
		return Result{}, err
	}
	// Re-run the accepted configuration for verification (the planner's
	// timing runs don't verify), to measure it under the fault schedule
	// (planning itself is always fault-free — an offline activity), or to
	// trace it (the planner's internal runs are not instrumented).
	if opts.Verify || opts.faultsEnabled() || opts.Trace != nil {
		node := farmem.NewNode(popts.NodeCfg)
		cfg := res.Config
		cfg.Faults = opts.Faults
		cfg.Resilience = opts.Resilience
		if co := opts.clusterOpts(true); co != nil {
			cfg.Cluster = co
			cfg.Faults = nil // per-node fault domains live in Cluster.Faults
		}
		r, err := rt.New(cfg, node)
		if err != nil {
			return Result{}, err
		}
		if err := r.Bind(res.Program); err != nil {
			return Result{}, err
		}
		if err := w.Init(r); err != nil {
			return Result{}, err
		}
		rres, err := runRT(sys, w, res.Program, r, opts)
		if err != nil {
			return Result{}, err
		}
		rres.PlanResult = res
		if !opts.faultsEnabled() {
			rres.Time = res.FinalTime
		}
		return rres, nil
	}
	return Result{System: sys, Time: res.FinalTime, PlanResult: res}, nil
}

func runSwapBaseline(sys System, w workload.Workload, opts Options) (Result, error) {
	var r *rt.Runtime
	var err error
	if sys == FastSwap {
		fopts := fastswap.Options{
			LocalBudget: opts.Budget, Net: opts.Net, NodeCfg: opts.NodeCfg,
			Faults: opts.Faults, Resilience: opts.Resilience,
		}
		if co := opts.clusterOpts(true); co != nil {
			fopts.Cluster, fopts.Faults = co, nil
		}
		r, err = fastswap.New(w, fopts)
	} else {
		lopts := leap.Options{
			LocalBudget: opts.Budget, Net: opts.Net, NodeCfg: opts.NodeCfg,
			Faults: opts.Faults, Resilience: opts.Resilience,
			NoBatching: opts.NoBatching,
		}
		if co := opts.clusterOpts(true); co != nil {
			lopts.Cluster, lopts.Faults = co, nil
		}
		r, err = leap.New(w, lopts)
	}
	if err != nil {
		return Result{}, err
	}
	return runRT(sys, w, w.Program(), r, opts)
}

func runAIFM(w workload.Workload, opts Options) (Result, error) {
	if opts.Nodes > 0 {
		return Result{}, fmt.Errorf("harness: aifm models a single far node; -nodes is not supported")
	}
	aopts := opts.AIFM
	aopts.LocalBudget = opts.Budget
	aopts.Net = opts.Net
	aopts.NodeCfg = opts.NodeCfg
	aopts.Faults = opts.Faults
	aopts.Resilience = opts.Resilience
	r, err := aifm.New(w, aopts)
	if err != nil {
		// AIFM's metadata-exhaustion failure is a *result* the paper
		// reports, not a harness error.
		return Result{System: AIFM, Failed: true, FailReason: err.Error()}, nil
	}
	r.SetTrace(opts.Trace)
	ex, err := exec.New(w.Program(), r, exec.Options{Params: w.Params()})
	if err != nil {
		return Result{}, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return Result{}, err
	}
	if err := r.FlushAll(clk); err != nil {
		return Result{}, err
	}
	if err := verify(w, r, opts); err != nil {
		return Result{}, fmt.Errorf("harness: aifm: %w", err)
	}
	return Result{System: AIFM, Time: clk.Now().Sub(0), Net: r.NetStats()}, nil
}
