// Package harness runs one workload under one far-memory system at one
// local-memory budget — the inner loop of every figure in the paper's
// evaluation. Systems: native (full local memory; the normalization
// denominator of all figures), Mira (full planner), Mira's swap-only
// baseline, FastSwap, Leap, and AIFM.
package harness

import (
	"fmt"

	"mira/internal/baselines/aifm"
	"mira/internal/baselines/fastswap"
	"mira/internal/baselines/leap"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/netmodel"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/transport"
	"mira/internal/workload"
)

// System identifies a far-memory system.
type System string

// The systems the evaluation compares.
const (
	Native   System = "native"
	Mira     System = "mira"
	MiraSwap System = "mira-swap" // Mira's iteration-0 generic swap config
	FastSwap System = "fastswap"
	Leap     System = "leap"
	AIFM     System = "aifm"
)

// AllSystems lists the far-memory systems (excluding native).
var AllSystems = []System{Mira, FastSwap, Leap, AIFM}

// Options tunes a harness run.
type Options struct {
	// Budget is the local memory in bytes (ignored for Native).
	Budget int64
	// Net overrides the interconnect model.
	Net netmodel.Config
	// NodeCfg overrides the far node.
	NodeCfg farmem.NodeConfig
	// Planner customizes Mira's planning (budget is overridden by
	// Budget).
	Planner planner.Options
	// Verify checks workload output after the run when the workload
	// implements workload.Verifier.
	Verify bool
	// AIFM customizes the AIFM baseline's library model (budget and
	// interconnect are overridden by Budget/Net).
	AIFM aifm.Options
	// Faults injects the deterministic fault schedule into the run's
	// transport (nil: fault-free). Native runs never see faults — they
	// are the golden reference the faulted runs are compared against.
	Faults *faults.Config
	// Resilience overrides the transport's retry/deadline/breaker policy.
	Resilience *transport.Policy
}

func (o Options) faultsEnabled() bool { return o.Faults != nil && o.Faults.Enabled() }

// Result is one run's outcome.
type Result struct {
	System System
	Time   sim.Duration
	// Failed marks systems that could not execute at this budget (AIFM
	// metadata exhaustion, Fig. 18) — plotted as absent in the paper.
	Failed bool
	// FailReason explains a failure.
	FailReason string
	// PlanResult carries the planner record for Mira runs.
	PlanResult *planner.Result
	// Net reports the transport's resilience counters for the timed run
	// (retries, timeouts, breaker trips, degraded-mode activity).
	Net transport.Stats
}

func (o Options) withDefaults() Options {
	if o.Net.BytesPerSecond == 0 {
		o.Net = netmodel.DefaultConfig()
	}
	if o.NodeCfg.Capacity == 0 {
		o.NodeCfg = farmem.DefaultNodeConfig()
	}
	return o
}

// Run executes w on sys.
func Run(sys System, w workload.Workload, opts Options) (Result, error) {
	opts = opts.withDefaults()
	switch sys {
	case Native:
		return runNative(w, opts)
	case Mira, MiraSwap:
		return runMira(sys, w, opts)
	case FastSwap, Leap:
		return runSwapBaseline(sys, w, opts)
	case AIFM:
		return runAIFM(w, opts)
	default:
		return Result{}, fmt.Errorf("harness: unknown system %q", sys)
	}
}

// runRT executes w over an already-bound rt runtime and verifies.
func runRT(sys System, w workload.Workload, r *rt.Runtime, opts Options) (Result, error) {
	ex, err := exec.New(w.Program(), r, exec.Options{Params: w.Params()})
	if err != nil {
		return Result{}, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return Result{}, err
	}
	if err := r.FlushAll(clk); err != nil {
		return Result{}, err
	}
	if err := verify(w, r, opts); err != nil {
		return Result{}, fmt.Errorf("harness: %s: %w", sys, err)
	}
	return Result{System: sys, Time: clk.Now().Sub(0), Net: r.NetStats()}, nil
}

func verify(w workload.Workload, d workload.ObjectDumper, opts Options) error {
	if !opts.Verify {
		return nil
	}
	v, ok := w.(workload.Verifier)
	if !ok {
		return nil
	}
	return v.Verify(d)
}

// runNative executes with every object in local memory: the figures'
// normalization denominator ("native execution on full local memory").
func runNative(w workload.Workload, opts Options) (Result, error) {
	prog := w.Program()
	placements := map[string]rt.Placement{}
	for _, o := range prog.Objects {
		placements[o.Name] = rt.Placement{Kind: rt.PlaceLocal}
	}
	var full int64
	for _, o := range prog.Objects {
		full += o.SizeBytes()
	}
	cfg := rt.Config{
		LocalBudget: full + (1 << 20),
		Placements:  placements,
		Net:         opts.Net,
	}
	node := farmem.NewNode(opts.NodeCfg)
	r, err := rt.New(cfg, node)
	if err != nil {
		return Result{}, err
	}
	if err := r.Bind(prog); err != nil {
		return Result{}, err
	}
	if err := w.Init(r); err != nil {
		return Result{}, err
	}
	return runRT(Native, w, r, opts)
}

// runMira plans (or, for MiraSwap, stops at iteration 0) and reports the
// accepted configuration's time.
func runMira(sys System, w workload.Workload, opts Options) (Result, error) {
	popts := opts.Planner
	popts.LocalBudget = opts.Budget
	if popts.Net.BytesPerSecond == 0 {
		popts.Net = opts.Net
	}
	if popts.NodeCfg.Capacity == 0 {
		popts.NodeCfg = opts.NodeCfg
	}
	if sys == MiraSwap {
		popts.DisableSeparation = true
	}
	res, err := planner.Plan(w, popts)
	if err != nil {
		return Result{}, err
	}
	// Re-run the accepted configuration for verification (the planner's
	// timing runs don't verify) or to measure it under the fault schedule
	// (planning itself is always fault-free — an offline activity).
	if opts.Verify || opts.faultsEnabled() {
		node := farmem.NewNode(popts.NodeCfg)
		cfg := res.Config
		cfg.Faults = opts.Faults
		cfg.Resilience = opts.Resilience
		r, err := rt.New(cfg, node)
		if err != nil {
			return Result{}, err
		}
		if err := r.Bind(res.Program); err != nil {
			return Result{}, err
		}
		if err := w.Init(r); err != nil {
			return Result{}, err
		}
		rres, err := runRT(sys, w, r, opts)
		if err != nil {
			return Result{}, err
		}
		rres.PlanResult = res
		if !opts.faultsEnabled() {
			rres.Time = res.FinalTime
		}
		return rres, nil
	}
	return Result{System: sys, Time: res.FinalTime, PlanResult: res}, nil
}

func runSwapBaseline(sys System, w workload.Workload, opts Options) (Result, error) {
	var r *rt.Runtime
	var err error
	if sys == FastSwap {
		r, err = fastswap.New(w, fastswap.Options{
			LocalBudget: opts.Budget, Net: opts.Net, NodeCfg: opts.NodeCfg,
			Faults: opts.Faults, Resilience: opts.Resilience,
		})
	} else {
		r, err = leap.New(w, leap.Options{
			LocalBudget: opts.Budget, Net: opts.Net, NodeCfg: opts.NodeCfg,
			Faults: opts.Faults, Resilience: opts.Resilience,
		})
	}
	if err != nil {
		return Result{}, err
	}
	return runRT(sys, w, r, opts)
}

func runAIFM(w workload.Workload, opts Options) (Result, error) {
	aopts := opts.AIFM
	aopts.LocalBudget = opts.Budget
	aopts.Net = opts.Net
	aopts.NodeCfg = opts.NodeCfg
	aopts.Faults = opts.Faults
	aopts.Resilience = opts.Resilience
	r, err := aifm.New(w, aopts)
	if err != nil {
		// AIFM's metadata-exhaustion failure is a *result* the paper
		// reports, not a harness error.
		return Result{System: AIFM, Failed: true, FailReason: err.Error()}, nil
	}
	ex, err := exec.New(w.Program(), r, exec.Options{Params: w.Params()})
	if err != nil {
		return Result{}, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return Result{}, err
	}
	if err := r.FlushAll(clk); err != nil {
		return Result{}, err
	}
	if err := verify(w, r, opts); err != nil {
		return Result{}, fmt.Errorf("harness: aifm: %w", err)
	}
	return Result{System: AIFM, Time: clk.Now().Sub(0), Net: r.NetStats()}, nil
}
