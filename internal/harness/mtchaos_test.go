package harness

import (
	"bytes"
	"testing"

	"mira/internal/apps/arraysum"
	"mira/internal/apps/seqscan"
	"mira/internal/cluster"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/faults"
	"mira/internal/ir"
	"mira/internal/netmodel"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/workload"
)

// buildChaosClusterRT plans w and binds it to a 2-node R=2 pool with fc (if
// any) injected on node 0 — node 1 stays healthy, so replication must be
// able to ride out every fault without losing data.
func buildChaosClusterRT(t *testing.T, w workload.Workload, budget int64, fc *faults.Config) (*rt.Runtime, *ir.Program) {
	t.Helper()
	plan, err := planner.Plan(w, planner.Options{
		LocalBudget:   budget,
		Net:           netmodel.DefaultConfig(),
		MaxIterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := plan.Config
	co := testClusterOpts(2)
	co.Seed = 5
	co.Policy = failFastPolicy()
	if fc != nil {
		co.Faults = []*faults.Config{fc, nil}
	}
	cfg.Cluster = co
	cfg.Faults = nil
	r, err := rt.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(plan.Program); err != nil {
		t.Fatal(err)
	}
	if err := w.Init(r); err != nil {
		t.Fatal(err)
	}
	return r, plan.Program
}

// dumpFarObjects dumps every far-placed object after a flush.
func dumpFarObjects(t *testing.T, r *rt.Runtime, prog *ir.Program) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, o := range prog.Objects {
		if o.Local {
			continue
		}
		d, err := r.DumpObject(o.Name)
		if err != nil {
			t.Fatalf("dump %q: %v", o.Name, err)
		}
		out[o.Name] = d
	}
	return out
}

// TestMultithreadedChaosRecoveryByteIdentical: a 4-thread group sharing one
// cluster-mode runtime survives a crash-wipe plus a partition mid-run, the
// wiped node is re-synced so the final far memory matches the fault-free
// run byte for byte, and two chaos runs with the same seed produce
// byte-identical traces and metrics.
func TestMultithreadedChaosRecoveryByteIdentical(t *testing.T) {
	const threads = 4
	const reps = 2
	mk := func() workload.Workload { return arraysum.New(arraysum.Config{N: 1 << 13, Seed: 3}) }
	budget := mk().FullMemoryBytes() / 3

	run := func(fc *faults.Config, horizon sim.Duration) (tb, mb []byte, dumps map[string][]byte, elapsed sim.Duration, stats []cluster.NodeStats) {
		tr := trace.New()
		w := mk()
		r, prog := buildChaosClusterRT(t, w, budget, fc)
		r.SetTrace(tr)
		g := sim.NewThreadGroup(threads, 0)
		sch := sim.NewScheduler(g)
		for i := 0; i < threads; i++ {
			sch.Spawn(func(th *sim.Thread) error {
				// Re-assert identity after every resume: another thread ran
				// in between and the runtime attributes by active tid.
				yield := func() {
					th.Yield()
					r.SetActiveTid(th.ID())
				}
				for rep := 0; rep < reps; rep++ {
					ex, err := exec.New(prog, r, exec.Options{Params: w.Params(), Yield: yield})
					if err != nil {
						return err
					}
					if _, err := ex.Run(th.Clock()); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if err := sch.Run(); err != nil {
			t.Fatal(err)
		}
		// Flush past both the join and the fault horizon: degraded-mode ops
		// complete instantly, so a chaos run can join while the victim is
		// still inside a crash window.
		fstart := g.Elapsed()
		if fstart < horizon {
			fstart = horizon
		}
		fclk := sim.NewClock(sim.Time(0).Add(fstart))
		if err := r.FlushAll(fclk); err != nil {
			t.Fatal(err)
		}
		var tbuf, mbuf bytes.Buffer
		if err := tr.WriteTrace(&tbuf); err != nil {
			t.Fatal(err)
		}
		if err := tr.Registry().WriteJSON(&mbuf); err != nil {
			t.Fatal(err)
		}
		return tbuf.Bytes(), mbuf.Bytes(), dumpFarObjects(t, r, prog), g.Elapsed(), r.ClusterStats()
	}

	// The fault-free run fixes the reference contents and the horizon the
	// chaos windows are placed in.
	_, _, ref, t0, _ := run(nil, 0)
	fc := &faults.Config{
		Seed: 11,
		Schedule: []faults.Event{
			{At: sim.Time(t0 / 3), Kind: faults.Crash, LoseMemory: true},
			{At: sim.Time(t0 / 2), Kind: faults.Restart},
			{At: sim.Time(2 * t0 / 3), Kind: faults.PartitionStart},
			{At: sim.Time(2*t0/3 + t0/12), Kind: faults.PartitionEnd},
		},
	}
	t1, m1, d1, _, st := run(fc, t0)
	t2, m2, d2, _, _ := run(fc, t0)

	if got := st[0].Faults.Wipes; got == 0 {
		t.Error("victim node never wiped — the schedule exercised nothing")
	}
	if st[0].Failovers == 0 {
		t.Error("no reads failed over to the healthy replica")
	}
	for name, want := range ref {
		if !bytes.Equal(d1[name], want) {
			t.Errorf("object %q: chaos run diverges from fault-free contents", name)
		}
	}
	if !bytes.Equal(t1, t2) {
		t.Error("traces diverge across identical chaos runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics diverge across identical chaos runs")
	}
	for name := range d1 {
		if !bytes.Equal(d1[name], d2[name]) {
			t.Errorf("object %q: far memory diverges across identical chaos runs", name)
		}
	}
}

// TestClusterReadRepairWritebackRaceConverges pins the race between
// read-repair and the degraded-mode write-back queue: a partition window
// makes reads fail over to the healthy replica (pushing repair snapshots
// back toward the dark node) while dirty-line write-backs queue in the same
// node's overlay. After the partition heals, the drain plus re-sync must
// converge — every mutation survives, no stale repair snapshot rolls a line
// back. Idle gaps between requests are load-bearing: they let the breaker
// close and the drain interleave with fresh writes, which is exactly the
// interleaving that lost data before the overlay kept non-overlapping
// entries.
func TestClusterReadRepairWritebackRaceConverges(t *testing.T) {
	mk := func() workload.Workload { return seqscan.New(seqscan.Config{N: 1 << 11, Seed: 1}) }
	budget := mk().FullMemoryBytes() / 2
	const reps = 14
	// The gap must sit inside the breaker cooldown (50µs under the
	// fail-fast policy) so a tripped breaker is still open at the next
	// admission check — that is what sheds work and leaves queued
	// write-backs behind for the drain to race.
	const gap = 40 * sim.Microsecond
	fc := &faults.Config{
		Seed:      5,
		ErrorRate: 0.02,
		DelayRate: 0.02,
		DelayMin:  2 * sim.Microsecond,
		DelayMax:  10 * sim.Microsecond,
		Schedule: []faults.Event{
			{At: sim.Time(300 * sim.Microsecond), Kind: faults.PartitionStart},
			{At: sim.Time(450 * sim.Microsecond), Kind: faults.PartitionEnd},
			{At: sim.Time(800 * sim.Microsecond), Kind: faults.PartitionStart},
			{At: sim.Time(950 * sim.Microsecond), Kind: faults.PartitionEnd},
		},
	}
	w := mk()
	r, prog := buildChaosClusterRT(t, w, budget, fc)
	clk := sim.NewClock(0)
	executed := 0
	for i := 0; i < reps; i++ {
		if i > 0 {
			clk.Advance(gap)
		}
		// Shed mutating work while the breaker is open (degraded read-only
		// mode) — the skip pattern that interleaves drains with new writes.
		if r.Link().BreakerOpen(clk.Now()) {
			continue
		}
		ex, err := exec.New(prog, r, exec.Options{Params: w.Params()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(clk); err != nil {
			t.Fatal(err)
		}
		executed++
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	got := dumpFarObjects(t, r, prog)

	var repairs, queued int64
	for _, ns := range r.ClusterStats() {
		repairs += ns.Repairs
		queued += ns.Net.QueuedWritebacks
		t.Logf("node %d: reads=%d writes=%d failovers=%d repairs=%d resyncs=%d ioErr=%d part=%d trips=%d queuedWB=%d",
			ns.Node, ns.Reads, ns.Writes, ns.Failovers, ns.Repairs, ns.Resyncs,
			ns.Faults.IOErrors, ns.Faults.Partitioned, ns.Net.BreakerTrips, ns.Net.QueuedWritebacks)
	}
	if repairs == 0 {
		t.Error("no read-repair fired — the race was not exercised")
	}
	if queued == 0 {
		t.Error("no write-back queued in the overlay — the race was not exercised")
	}
	if executed == 0 || executed == reps {
		t.Errorf("executed %d/%d requests — degraded windows never shed work", executed, reps)
	}

	// Native replay of exactly the executed count is the convergence oracle.
	w2 := mk()
	plan, err := planner.Plan(w2, planner.Options{
		LocalBudget:   budget,
		Net:           netmodel.DefaultConfig(),
		MaxIterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rt.New(plan.Config, farmem.NewNode(farmem.DefaultNodeConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Bind(plan.Program); err != nil {
		t.Fatal(err)
	}
	if err := w2.Init(ref); err != nil {
		t.Fatal(err)
	}
	rclk := sim.NewClock(0)
	for i := 0; i < executed; i++ {
		ex, err := exec.New(plan.Program, ref, exec.Options{Params: w2.Params()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(rclk); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.FlushAll(rclk); err != nil {
		t.Fatal(err)
	}
	want := dumpFarObjects(t, ref, plan.Program)
	for name, wd := range want {
		if !bytes.Equal(got[name], wd) {
			t.Errorf("object %q: chaos cluster diverges from native replay of %d requests (dirty lines lost or rolled back)",
				name, executed)
		}
	}
}
