package harness

import (
	"bytes"
	"testing"

	"mira/internal/apps/graphtraverse"
	"mira/internal/apps/stridescan"
	"mira/internal/faults"
	"mira/internal/prefetch"
	"mira/internal/sim"
	"mira/internal/trace"
	"mira/internal/workload"
)

// prefetchApps covers both access shapes the zoo distinguishes: an affine
// strided scan (programmed's home turf) and an indirect repeating graph
// traversal (history's home turf).
func prefetchApps() map[string]workload.Workload {
	return map[string]workload.Workload{
		"graphtraverse": graphtraverse.New(graphtraverse.Config{Edges: 2048, Nodes: 512, Passes: 2, Seed: 7}),
		"stridescan":    stridescan.New(stridescan.Config{N: 1 << 12, Seed: 1}),
	}
}

// linePolicies is every zoo policy plus the line plane's compiled arm.
func linePolicies() []string { return append(prefetch.Names(), prefetch.Compiled) }

// prefetchCell runs one (plane, policy, app) cell with tracing attached and
// returns the result plus the serialized trace and metrics.
func prefetchCell(t *testing.T, plane, policy string, w workload.Workload) (Result, string, string) {
	t.Helper()
	tr := trace.New()
	opts := Options{Budget: w.FullMemoryBytes() / 4, Verify: true, Trace: tr}
	spec := prefetch.Spec{Policy: policy}
	var res Result
	var err error
	if plane == "page" {
		res, err = RunPagePolicy(w, opts, spec)
	} else {
		res, err = RunLinePolicy(w, opts, spec)
	}
	if err != nil {
		t.Fatalf("%s/%s: %v", plane, policy, err)
	}
	if res.Failed {
		t.Fatalf("%s/%s failed: %s", plane, policy, res.FailReason)
	}
	var tb, mb bytes.Buffer
	if err := tr.WriteTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := tr.Registry().WriteJSON(&mb); err != nil {
		t.Fatal(err)
	}
	return res, tb.String(), mb.String()
}

// TestPrefetchGoldenDeterminism is the zoo's golden table: every policy on
// both planes, for a strided scan and a graph traversal, must verify
// byte-identical against the native oracle (Verify above) AND serialize
// byte-identical traces and metrics across two identical runs — advisory
// prefetch must not introduce a single nondeterministic event.
func TestPrefetchGoldenDeterminism(t *testing.T) {
	for name, w := range prefetchApps() {
		for _, policy := range linePolicies() {
			if policy != prefetch.Compiled {
				a, ta, ma := prefetchCell(t, "page", policy, w)
				b, tb, mb := prefetchCell(t, "page", policy, w)
				if a.Time != b.Time || ta != tb || ma != mb {
					t.Errorf("%s page/%s: nondeterministic across identical runs", name, policy)
				}
			}
			a, ta, ma := prefetchCell(t, "line", policy, w)
			b, tb, mb := prefetchCell(t, "line", policy, w)
			if a.Time != b.Time || ta != tb || ma != mb {
				t.Errorf("%s line/%s: nondeterministic across identical runs", name, policy)
			}
		}
	}
}

// TestPrefetchMetricsRegistered: the efficacy counters land in the metrics
// registry under their trace names on both planes.
func TestPrefetchMetricsRegistered(t *testing.T) {
	w := prefetchApps()["stridescan"]
	_, _, mPage := prefetchCell(t, "page", "readahead", w)
	for _, key := range []string{"swap.prefetch.useful", "swap.prefetch.useless", "swap.prefetch.dropped"} {
		if !bytes.Contains([]byte(mPage), []byte(key)) {
			t.Errorf("page metrics missing %q", key)
		}
	}
	_, _, mLine := prefetchCell(t, "line", "programmed", w)
	for _, key := range []string{"prefetch.issued", "prefetch.useful", "prefetch.useless", "prefetch.dropped"} {
		if !bytes.Contains([]byte(mLine), []byte(key)) {
			t.Errorf("line metrics missing %q", key)
		}
	}
}

// checkEfficacy pins the no-double-charge invariants: a prefetched unit is
// resolved at most once (useful when touched, useless when evicted), late
// only within useful, and every failed piece is dropped, never issued.
func checkEfficacy(t *testing.T, label string, pf prefetch.Efficacy) {
	t.Helper()
	if pf.Useful+pf.Useless > pf.Issued {
		t.Errorf("%s: useful %d + useless %d exceed issued %d — a prefetch was charged twice",
			label, pf.Useful, pf.Useless, pf.Issued)
	}
	if pf.Late > pf.Useful {
		t.Errorf("%s: late %d > useful %d", label, pf.Late, pf.Useful)
	}
	if pf.Issued < 0 || pf.Useful < 0 || pf.Useless < 0 || pf.Dropped < 0 {
		t.Errorf("%s: negative efficacy counter: %+v", label, pf)
	}
}

// TestPrefetchUnderFaults: advisory prefetch under an injected fault load
// must never abort the run — failed speculative pieces are dropped and
// counted while the demand path retries to byte-identical output. Covers
// the probabilistic NACK schedule and a hard mid-run partition window, for
// every policy on both planes.
func TestPrefetchUnderFaults(t *testing.T) {
	w := graphtraverse.New(graphtraverse.Config{Edges: 2048, Nodes: 512, Passes: 2, Seed: 7})
	budget := w.FullMemoryBytes() / 4

	// Fault-free baselines per plane: the partition window must land
	// mid-run, and the line plane finishes an order of magnitude before
	// the page plane.
	t0 := map[string]sim.Duration{}
	for _, plane := range []string{"page", "line"} {
		var res Result
		var err error
		if plane == "page" {
			res, err = RunPagePolicy(w, Options{Budget: budget}, prefetch.Spec{Policy: "none"})
		} else {
			res, err = RunLinePolicy(w, Options{Budget: budget}, prefetch.Spec{Policy: "none"})
		}
		if err != nil {
			t.Fatal(err)
		}
		t0[plane] = res.Time
	}
	partition := func(plane string) faults.Config {
		return faults.Config{
			Seed: 5,
			Schedule: []faults.Event{
				{At: sim.Time(t0[plane] / 3), Kind: faults.PartitionStart},
				{At: sim.Time(t0[plane] / 2), Kind: faults.PartitionEnd},
			},
		}
	}
	flaky, err := faults.Named("flaky", 3)
	if err != nil {
		t.Fatal(err)
	}
	schedules := map[string]func(plane string) faults.Config{
		"flaky":     func(string) faults.Config { return flaky },
		"partition": partition,
	}

	for schedName, mkSched := range schedules {
		for _, policy := range linePolicies() {
			planes := []string{"line"}
			if policy != prefetch.Compiled {
				planes = append(planes, "page")
			}
			for _, plane := range planes {
				label := schedName + "/" + plane + "/" + policy
				fcCopy := mkSched(plane)
				opts := Options{
					Budget:     budget,
					Verify:     true,
					Faults:     &fcCopy,
					Resilience: recoveryPolicy(t0[plane]),
				}
				spec := prefetch.Spec{Policy: policy}
				var res Result
				var err error
				if plane == "page" {
					res, err = RunPagePolicy(w, opts, spec)
				} else {
					res, err = RunLinePolicy(w, opts, spec)
				}
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if res.Failed {
					t.Fatalf("%s: run failed: %s", label, res.FailReason)
				}
				checkEfficacy(t, label, res.Prefetch)
				if res.Net.Retries == 0 && res.Net.Timeouts == 0 {
					t.Errorf("%s: schedule injected nothing", label)
				}
			}
		}
	}
}
