package harness

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"mira/internal/baselines/fastswap"
	"mira/internal/baselines/leap"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/planner"
	"mira/internal/rt"
	"mira/internal/sim"
	"mira/internal/workload"
)

// randomWorkload is a generated program with its data and object roles.
type randomWorkload struct {
	prog *ir.Program
	data map[string][]byte
	full int64
}

func (w *randomWorkload) Name() string                  { return w.prog.Name }
func (w *randomWorkload) Program() *ir.Program          { return w.prog }
func (w *randomWorkload) Params() map[string]exec.Value { return nil }
func (w *randomWorkload) FullMemoryBytes() int64        { return w.full }
func (w *randomWorkload) Init(t workload.ObjectIniter) error {
	for name, d := range w.data {
		if err := t.InitObject(name, d); err != nil {
			return err
		}
	}
	return nil
}

// generate builds a random but well-formed program: data arrays (read and
// written), read-only index arrays whose values are valid element indices
// of their target array, and loops mixing sequential, strided, and indirect
// accesses — the pattern space the analyses classify.
func generate(seed uint64) *randomWorkload {
	rng := sim.NewRNG(seed)
	b := ir.NewBuilder(fmt.Sprintf("rand%d", seed))
	w := &randomWorkload{data: map[string][]byte{}}

	nData := 2 + rng.Intn(3)
	dataNames := make([]string, nData)
	counts := make([]int64, nData)
	for i := 0; i < nData; i++ {
		dataNames[i] = fmt.Sprintf("d%d", i)
		counts[i] = int64(64 + rng.Intn(512))
		b.IntArray(dataNames[i], counts[i])
		buf := make([]byte, counts[i]*8)
		for e := int64(0); e < counts[i]; e++ {
			binary.LittleEndian.PutUint64(buf[e*8:], rng.Uint64()%1000)
		}
		w.data[dataNames[i]] = buf
		w.full += counts[i] * 8
	}
	// Index arrays: idx[k] targets data array tgt, values < counts[tgt].
	nIdx := 1 + rng.Intn(2)
	idxNames := make([]string, nIdx)
	idxTarget := make([]int, nIdx)
	idxCount := make([]int64, nIdx)
	for i := 0; i < nIdx; i++ {
		idxNames[i] = fmt.Sprintf("x%d", i)
		idxTarget[i] = rng.Intn(nData)
		idxCount[i] = int64(64 + rng.Intn(256))
		b.IntArray(idxNames[i], idxCount[i])
		buf := make([]byte, idxCount[i]*8)
		for e := int64(0); e < idxCount[i]; e++ {
			binary.LittleEndian.PutUint64(buf[e*8:], uint64(rng.Intn(int(counts[idxTarget[i]]))))
		}
		w.data[idxNames[i]] = buf
		w.full += idxCount[i] * 8
	}

	fb := b.Func("main")
	acc := fb.Var(ir.C(0))
	nLoops := 2 + rng.Intn(3)
	for l := 0; l < nLoops; l++ {
		switch rng.Intn(4) {
		case 0: // sequential read-accumulate + occasional write
			di := rng.Intn(nData)
			fb.Loop(ir.C(0), ir.C(counts[di]), ir.C(1), func(i ir.Expr) {
				v := fb.Load(dataNames[di], i, "")
				fb.Set(acc, ir.Add(ir.R(acc.ID), v))
				if rng.Intn(2) == 0 {
					fb.Store(dataNames[di], i, "", ir.Add(v, ir.C(1)))
				}
			})
		case 1: // strided read — half via a scaled index, half via a
			// stepped loop (the two classifier-equivalent spellings)
			di := rng.Intn(nData)
			stride := int64(2 + rng.Intn(3))
			if rng.Intn(2) == 0 {
				fb.Loop(ir.C(0), ir.C(counts[di]/stride), ir.C(1), func(i ir.Expr) {
					v := fb.Load(dataNames[di], ir.Mul(i, ir.C(stride)), "")
					fb.Set(acc, ir.Add(ir.R(acc.ID), v))
				})
			} else {
				fb.Loop(ir.C(0), ir.C(counts[di]), ir.C(stride), func(i ir.Expr) {
					v := fb.Load(dataNames[di], i, "")
					fb.Set(acc, ir.Add(ir.R(acc.ID), v))
				})
			}
		case 2: // indirect read-modify-write through an index array
			xi := rng.Intn(nIdx)
			tgt := dataNames[idxTarget[xi]]
			fb.Loop(ir.C(0), ir.C(idxCount[xi]), ir.C(1), func(i ir.Expr) {
				idx := fb.Load(idxNames[xi], i, "")
				v := fb.Load(tgt, idx, "")
				fb.Store(tgt, idx, "", ir.Add(v, ir.C(1)))
				fb.Set(acc, ir.Add(ir.R(acc.ID), v))
			})
		default: // data-dependent conditional writes (If-clobbered
			// registers exercise the analyses' invalidation paths)
			di := rng.Intn(nData)
			cut := int64(rng.Intn(1000))
			fb.Loop(ir.C(0), ir.C(counts[di]), ir.C(1), func(i ir.Expr) {
				v := fb.Load(dataNames[di], i, "")
				fb.If(ir.Lt(v, ir.C(cut)), func() {
					fb.Store(dataNames[di], i, "", ir.Add(v, ir.C(3)))
					fb.Set(acc, ir.Add(ir.R(acc.ID), ir.C(1)))
				}, func() {
					fb.Set(acc, ir.Add(ir.R(acc.ID), v))
				})
			})
		}
	}
	b.IntArray("out", 1)
	fb.Store("out", ir.C(0), "", ir.R(acc.ID))
	w.full += 8
	w.prog = b.MustProgram()
	return w
}

// dumpAll flushes and dumps every object.
func dumpAll(t *testing.T, w *randomWorkload, d workload.ObjectDumper) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, o := range w.prog.Objects {
		buf, err := d.DumpObject(o.Name)
		if err != nil {
			t.Fatalf("dump %s: %v", o.Name, err)
		}
		out[o.Name] = buf
	}
	return out
}

// TestDifferentialRandomPrograms: for random programs, every far-memory
// system must compute byte-identical final state to native execution —
// prefetching, native-load conversion, eviction hints, fusion, releases,
// selective transmission, and page swapping are all pure optimizations.
func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 32; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := generate(seed)
			budget := w.FullMemoryBytes() / 3

			type sysDump struct {
				sys   System
				dumps map[string][]byte
			}
			var results []sysDump
			for _, sys := range []System{Native, Mira, FastSwap, Leap} {
				res, err := runAndDump(t, sys, w, budget)
				if err != nil {
					t.Fatalf("%s: %v", sys, err)
				}
				results = append(results, sysDump{sys: sys, dumps: res})
			}
			ref := results[0]
			for _, r := range results[1:] {
				for name, want := range ref.dumps {
					if !bytes.Equal(r.dumps[name], want) {
						t.Fatalf("%s: object %q diverges from native", r.sys, name)
					}
				}
			}
		})
	}
}

// runAndDump executes w on sys and returns all object dumps. It drives the
// system pieces directly (harness.Run verifies via the app oracles, which
// random programs don't have).
func runAndDump(t *testing.T, sys System, w *randomWorkload, budget int64) (map[string][]byte, error) {
	t.Helper()
	var prog *ir.Program
	var r *rt.Runtime
	switch sys {
	case Native:
		prog = w.Program()
		placements := map[string]rt.Placement{}
		for _, o := range prog.Objects {
			placements[o.Name] = rt.Placement{Kind: rt.PlaceLocal}
		}
		var err error
		r, err = rt.New(rt.Config{LocalBudget: w.FullMemoryBytes() + (1 << 20), Placements: placements},
			farmem.NewNode(farmem.DefaultNodeConfig()))
		if err != nil {
			return nil, err
		}
	case Mira:
		res, err := planner.Plan(w, planner.Options{LocalBudget: budget, MaxIterations: 3})
		if err != nil {
			return nil, err
		}
		prog = res.Program
		r, err = rt.New(res.Config, farmem.NewNode(farmem.DefaultNodeConfig()))
		if err != nil {
			return nil, err
		}
	case FastSwap:
		prog = w.Program()
		var err error
		r, err = fastswap.New(w, fastswap.Options{LocalBudget: budget})
		if err != nil {
			return nil, err
		}
	case Leap:
		prog = w.Program()
		var err error
		r, err = leap.New(w, leap.Options{LocalBudget: budget})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unsupported %s", sys)
	}
	if sys == Native || sys == Mira {
		if err := r.Bind(prog); err != nil {
			return nil, err
		}
		if err := w.Init(r); err != nil {
			return nil, err
		}
	}
	ex, err := exec.New(prog, r, exec.Options{})
	if err != nil {
		return nil, err
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		return nil, err
	}
	if err := r.FlushAll(clk); err != nil {
		return nil, err
	}
	return dumpAll(t, w, r), nil
}
