package codegen

import (
	"strings"
	"testing"

	"mira/internal/analysis"
	"mira/internal/ir"
)

// scanProgram is a minimal sequential read-modify-write loop over one
// object, the shape the doorbell-batched prefetch targets.
func scanProgram(n int64) *ir.Program {
	b := ir.NewBuilder("scan")
	b.Object("recs", 64, n, ir.F("val", 0, 8))
	fb := b.Func("scan")
	fb.Loop(ir.C(0), ir.C(n), ir.C(1), func(i ir.Expr) {
		v := fb.Load("recs", i, "val")
		fb.Store("recs", i, "val", ir.Add(v, ir.C(1)))
	})
	b.SetEntry("scan")
	return b.MustProgram()
}

func batchedPlan(dist, lineElems, batch int64) *Plan {
	return &Plan{
		Objects: map[string]*ObjectPlan{
			"recs": {
				Object:           "recs",
				Pattern:          analysis.PatternSequential,
				PrefetchDistance: dist,
				LineElems:        lineElems,
				BatchLines:       batch,
			},
		},
	}
}

// stmts walks the transformed loop body's top-level statements.
func loopBody(t *testing.T, p *ir.Program) []ir.Stmt {
	t.Helper()
	for _, f := range p.Funcs {
		for _, st := range f.Body {
			if l, ok := st.(*ir.Loop); ok {
				return l.Body
			}
		}
	}
	t.Fatal("no loop in transformed program")
	return nil
}

// findBatches collects every BatchPrefetch in the body with its guard
// period (the modulus of the enclosing If's condition, 0 if unguarded or
// guarded on equality with the loop start).
func findBatches(body []ir.Stmt) (primed []*ir.BatchPrefetch, guarded map[int64]*ir.BatchPrefetch) {
	guarded = map[int64]*ir.BatchPrefetch{}
	for _, st := range body {
		iff, ok := st.(*ir.If)
		if !ok || len(iff.Then) != 1 {
			continue
		}
		bp, ok := iff.Then[0].(*ir.BatchPrefetch)
		if !ok {
			continue
		}
		// Guard shapes: (iv+d) % period == 0 (steady state) or iv == start
		// (priming).
		if eq, ok := iff.Cond.(*ir.Bin); ok && eq.Op == ir.OpEq {
			if mod, ok := eq.A.(*ir.Bin); ok && mod.Op == ir.OpMod {
				if c, ok := mod.B.(*ir.Const); ok {
					guarded[c.I] = bp
					continue
				}
			}
			primed = append(primed, bp)
		}
	}
	return primed, guarded
}

func TestBatchedPrefetchPerObjectEmission(t *testing.T) {
	const dist, le, b = 128, 32, 8
	out, err := Apply(scanProgram(1<<14), batchedPlan(dist, le, b))
	if err != nil {
		t.Fatal(err)
	}
	body := loopBody(t, out)
	primed, guarded := findBatches(body)

	// Steady state: one BatchPrefetch guarded on period b*le with b entries
	// at iv+dist, iv+dist+le, ..., iv+dist+(b-1)*le.
	bp, ok := guarded[b*le]
	if !ok {
		t.Fatalf("no BatchPrefetch guarded on period %d; text:\n%s", b*le, ir.Print(out))
	}
	if len(bp.Entries) != b {
		t.Fatalf("batch has %d entries, want %d", len(bp.Entries), b)
	}
	for k, e := range bp.Entries {
		if e.Obj != "recs" {
			t.Fatalf("entry %d targets %q", k, e.Obj)
		}
		add, ok := e.Index.(*ir.Bin)
		if !ok || add.Op != ir.OpAdd {
			t.Fatalf("entry %d index is not iv+offset", k)
		}
		c, ok := add.B.(*ir.Const)
		if !ok || c.I != dist+int64(k)*le {
			t.Errorf("entry %d offset = %+v, want %d", k, add.B, dist+int64(k)*le)
		}
	}

	// Priming: one first-iteration BatchPrefetch covering the warmup gap of
	// dist/le + b lines at offsets 0, le, 2*le, ...
	if len(primed) != 1 {
		t.Fatalf("want 1 priming batch, got %d", len(primed))
	}
	wantLines := int64(dist/le + b)
	if got := int64(len(primed[0].Entries)); got != wantLines {
		t.Fatalf("priming batch has %d entries, want %d", got, wantLines)
	}
}

func TestBatchLinesOneKeepsPerLinePrefetch(t *testing.T) {
	out, err := Apply(scanProgram(1<<14), batchedPlan(128, 32, 1))
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Print(out)
	if strings.Contains(text, "batch_prefetch") || strings.Contains(strings.ToLower(text), "batchprefetch") {
		t.Fatalf("BatchLines=1 emitted a batched prefetch:\n%s", text)
	}
	if !strings.Contains(text, "rmem.prefetch recs[") {
		t.Fatalf("per-line prefetch missing:\n%s", text)
	}
	body := loopBody(t, out)
	if primed, _ := findBatches(body); len(primed) != 0 {
		t.Fatal("unbatched stream must not emit a priming doorbell")
	}
}

func TestFusedBatchCrossProduct(t *testing.T) {
	// Two same-line-geometry objects in a fused loop: the batch entry list
	// is the cross product (line offset x object).
	n := int64(1 << 12)
	b := ir.NewBuilder("fused")
	b.Object("a", 64, n, ir.F("v", 0, 8))
	b.Object("b", 64, n, ir.F("v", 0, 8))
	fb := b.Func("f")
	fb.Loop(ir.C(0), ir.C(n), ir.C(1), func(i ir.Expr) {
		x := fb.Load("a", i, "v")
		y := fb.Load("b", i, "v")
		fb.Store("a", i, "v", ir.Add(x, y))
	})
	b.SetEntry("f")
	prog := b.MustProgram()

	const dist, le, depth = 64, 32, 4
	mk := func(name string) *ObjectPlan {
		return &ObjectPlan{
			Object:           name,
			Pattern:          analysis.PatternSequential,
			PrefetchDistance: dist,
			LineElems:        le,
			BatchLines:       depth,
		}
	}
	out, err := Apply(prog, &Plan{
		Objects:            map[string]*ObjectPlan{"a": mk("a"), "b": mk("b")},
		BatchFusedPrefetch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	body := loopBody(t, out)
	primed, guarded := findBatches(body)
	bp, ok := guarded[depth*le]
	if !ok {
		t.Fatalf("no fused BatchPrefetch guarded on period %d:\n%s", depth*le, ir.Print(out))
	}
	if len(bp.Entries) != 2*depth {
		t.Fatalf("fused batch has %d entries, want %d (2 objects x %d lines)", len(bp.Entries), 2*depth, depth)
	}
	objs := map[string]int{}
	for _, e := range bp.Entries {
		objs[e.Obj]++
	}
	if objs["a"] != depth || objs["b"] != depth {
		t.Fatalf("cross product uneven: %v", objs)
	}
	if len(primed) != 1 {
		t.Fatalf("fused stream missing its priming doorbell (got %d)", len(primed))
	}
}
