package codegen

import (
	"strings"
	"testing"

	"mira/internal/analysis"
	"mira/internal/ir"
)

func phaseProgram() *ir.Program {
	b := ir.NewBuilder("phases")
	b.FloatArray("w0", 64)
	b.FloatArray("w1", 64)
	l0 := b.Func("layer0")
	l0.Unary(ir.IntrCopy, ir.T("w0", ir.C(0), 4, 8), ir.T("w0", ir.C(32), 4, 8))
	l1 := b.Func("layer1")
	l1.Unary(ir.IntrCopy, ir.T("w1", ir.C(0), 4, 8), ir.T("w1", ir.C(32), 4, 8))
	fb := b.Func("main")
	fb.Call("layer0")
	fb.Call("layer1")
	b.SetEntry("main")
	return b.MustProgram()
}

func TestReleaseAfterEmission(t *testing.T) {
	p := phaseProgram()
	plan := &Plan{
		ReleaseAfter: map[string][]string{
			"layer0": {"w0"},
			"layer1": {"w1"},
		},
	}
	out, err := Apply(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Print(out)
	if !strings.Contains(text, "rmem.release w0") || !strings.Contains(text, "rmem.release w1") {
		t.Fatalf("releases missing:\n%s", text)
	}
	// The release lands at the end of the owning function.
	fn, _ := out.Func("layer0")
	if _, ok := fn.Body[len(fn.Body)-1].(*ir.Release); !ok {
		t.Fatalf("layer0 does not end with a release: %T", fn.Body[len(fn.Body)-1])
	}
}

func TestReleaseBeforeTrailingReturn(t *testing.T) {
	b := ir.NewBuilder("ret")
	b.IntArray("a", 8)
	fb := b.Func("main")
	fb.Load("a", ir.C(0), "")
	fb.Return(ir.C(1))
	p := b.MustProgram()
	out, err := Apply(p, &Plan{ReleaseAfter: map[string][]string{"main": {"a"}}})
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := out.Func("main")
	n := len(fn.Body)
	if _, ok := fn.Body[n-1].(*ir.Return); !ok {
		t.Fatalf("return displaced: last stmt %T", fn.Body[n-1])
	}
	if _, ok := fn.Body[n-2].(*ir.Release); !ok {
		t.Fatalf("release not before return: %T", fn.Body[n-2])
	}
}

func TestOffloadedFunctionsNotInstrumented(t *testing.T) {
	b := ir.NewBuilder("off")
	b.IntArray("a", 1024)
	work := b.Func("work")
	work.MarkNoSharedWrites()
	work.Loop(ir.C(0), ir.C(1024), ir.C(1), func(i ir.Expr) {
		work.Load("a", i, "")
	})
	fb := b.Func("main")
	fb.Call("work")
	b.SetEntry("main")
	p := b.MustProgram()

	plan := &Plan{
		Objects: map[string]*ObjectPlan{
			"a": {Object: "a", Pattern: analysis.PatternSequential, PrefetchDistance: 64, LineElems: 256, Native: true, EvictLag: 128},
		},
		Offload:      map[string]bool{"work": true},
		ReleaseAfter: map[string][]string{"work": {"a"}},
	}
	out, err := Apply(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := out.Func("work")
	ir.Walk(fn.Body, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Prefetch, *ir.Evict, *ir.Release, *ir.If:
			t.Fatalf("offloaded body instrumented with %T", s)
		case *ir.Load:
			if st.Native {
				t.Fatal("offloaded body carries native annotation")
			}
		}
		return true
	})
	if !strings.Contains(ir.Print(out), "rmem.call_offloaded work") {
		t.Fatal("call not marked offloaded")
	}
}
