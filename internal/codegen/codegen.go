// Package codegen rewrites IR programs according to a Plan: it fuses
// adjacent loops (§4.5 batching), inserts prefetch operations one network
// round-trip ahead of accesses (§4.5 adaptive prefetching, including
// chained indirect prefetches), inserts eviction hints after last accesses
// (§4.5), converts provably-resident dereferences to native loads (§4.4),
// marks write-only full-line stores as no-fetch (§4.5), and marks calls to
// offloaded functions (§4.8). The input program is never mutated; Apply
// returns a transformed clone.
package codegen

import (
	"fmt"

	"mira/internal/analysis"
	"mira/internal/ir"
)

// ObjectPlan carries the per-object decisions the planner made.
type ObjectPlan struct {
	Object string
	// Pattern is the merged analyzed pattern driving the choices below.
	Pattern analysis.Pattern
	// PrefetchDistance is how many elements ahead to prefetch (0
	// disables). The planner computes it as ceil(RTT / per-iteration
	// time) (§4.5).
	PrefetchDistance int64
	// LineElems is elements per cache line: prefetches and eviction
	// hints fire once per line boundary, not per element.
	LineElems int64
	// BatchLines vectorizes the prefetch stream: each doorbell fetches
	// this many future lines in one batched chain, and the guard fires
	// once per BatchLines line boundaries instead of per line (§4.5 data
	// access batching). 0 or 1 keeps the per-line prefetch.
	BatchLines int64
	// Native converts this object's loop accesses to native loads —
	// legal when the planner proved prefetch-covered residency and no
	// conflicting accesses (§4.4).
	Native bool
	// NoFetch marks sequential whole-element stores as
	// allocate-without-fetch (§4.5 read/write optimization).
	NoFetch bool
	// EvictLag inserts eviction hints EvictLag elements behind the
	// current access (0 disables).
	EvictLag int64
	// ChainedFrom enables indirect prefetching: this object's indices
	// come from values loaded from ChainedFrom, so codegen loads
	// ChainedFrom[i+D] and prefetches this object at that value (§1's
	// motivating example).
	ChainedFrom string
}

// Plan is codegen's complete instruction set for one compilation.
type Plan struct {
	Objects map[string]*ObjectPlan
	// FuseLoops applies loop fusion to dependence-safe adjacent loops.
	FuseLoops bool
	// BatchFusedPrefetch replaces the per-object prefetches of a fused
	// loop with one scatter-gather BatchPrefetch per line boundary.
	BatchFusedPrefetch bool
	// SuppressPrefetchStmts skips emitting Prefetch/BatchPrefetch
	// statements (and their guards and priming doorbells) while keeping
	// every other decision — Native conversion, NoFetch stores, eviction
	// hints. Used by the programmed-prefetch arm: an access-program runner
	// provides the residency coverage the statements would have, without
	// their per-iteration guard arithmetic.
	SuppressPrefetchStmts bool
	// Offload marks calls to these functions as far-node executions.
	Offload map[string]bool
	// ReleaseAfter appends rmem.release operations at the end of each
	// listed function for the objects whose global lifetime ends there
	// (§4.1 lifetime-bounded sections).
	ReleaseAfter map[string][]string
}

// Apply transforms a clone of p according to plan.
func Apply(p *ir.Program, plan *Plan) (*ir.Program, error) {
	out := ir.Clone(p)
	for _, fn := range out.Funcs {
		if plan.FuseLoops {
			fn.Body = fuseBlocks(fn.Body)
		}
		if plan.Offload[fn.Name] {
			// Offloaded bodies execute on the far node next to the
			// data: cache-section instrumentation (prefetch/evict
			// guards, native annotations, releases) would only burn
			// far-CPU cycles there.
			continue
		}
		g := &gen{p: out, fn: fn, plan: plan}
		g.block(fn.Body, nil)
		if len(plan.Offload) > 0 {
			fn.Body = markOffloads(fn.Body, plan.Offload)
		}
		for _, obj := range plan.ReleaseAfter[fn.Name] {
			// Keep a trailing Return last.
			if n := len(fn.Body); n > 0 {
				if _, isRet := fn.Body[n-1].(*ir.Return); isRet {
					fn.Body = append(fn.Body[:n-1], &ir.Release{Obj: obj}, fn.Body[n-1])
					continue
				}
			}
			fn.Body = append(fn.Body, &ir.Release{Obj: obj})
		}
	}
	if err := ir.Validate(out); err != nil {
		return nil, fmt.Errorf("codegen: transformed program invalid: %w", err)
	}
	return out, nil
}

// fuseBlocks merges runs of same-bounds dependence-free loops, recursively.
// Loops in a run may be separated by constant-valued scalar assignments
// (accumulator initializations); those are hoisted above the fused loop,
// which preserves semantics because they read no registers and touch no
// memory.
func fuseBlocks(body []ir.Stmt) []ir.Stmt {
	var out []ir.Stmt
	i := 0
	for i < len(body) {
		l0, ok := body[i].(*ir.Loop)
		if !ok {
			if ifSt, isIf := body[i].(*ir.If); isIf {
				ifSt.Then = fuseBlocks(ifSt.Then)
				ifSt.Else = fuseBlocks(ifSt.Else)
			}
			out = append(out, body[i])
			i++
			continue
		}
		// Extend the run: [loop] (hoistable* loop)*
		loops := []*ir.Loop{l0}
		loopIdx := []int{i}
		var hoisted []ir.Stmt
		j := i + 1
		for j < len(body) {
			// Skip a stretch of hoistable scalar assigns.
			k := j
			var pending []ir.Stmt
			for k < len(body) {
				a, isAssign := body[k].(*ir.Assign)
				if !isAssign || ir.ExprOps(a.Val) != 0 || !constExpr(a.Val) {
					break
				}
				pending = append(pending, a)
				k++
			}
			lk, isLoop := (ir.Stmt)(nil), false
			if k < len(body) {
				var l *ir.Loop
				l, isLoop = body[k].(*ir.Loop)
				lk = l
			}
			if !isLoop || !analysis.SameBounds(l0, lk.(*ir.Loop)) {
				break
			}
			candidate := make([]ir.Stmt, 0, len(loops)+1)
			for _, l := range loops {
				candidate = append(candidate, l)
			}
			candidate = append(candidate, lk)
			if !analysis.CanFuse(candidate) {
				break
			}
			hoisted = append(hoisted, pending...)
			loops = append(loops, lk.(*ir.Loop))
			loopIdx = append(loopIdx, k)
			j = k + 1
		}
		if len(loops) > 1 {
			out = append(out, hoisted...)
			fused := &ir.Loop{
				Name:  l0.Name,
				IVReg: l0.IVReg,
				Start: l0.Start,
				End:   l0.End,
				Step:  l0.Step,
				Body:  append([]ir.Stmt(nil), l0.Body...),
			}
			for _, lk := range loops[1:] {
				ir.SubstRegBlock(lk.Body, lk.IVReg, fused.IVReg)
				fused.Body = append(fused.Body, lk.Body...)
			}
			fused.Body = fuseBlocks(fused.Body)
			out = append(out, fused)
		} else {
			l0.Body = fuseBlocks(l0.Body)
			out = append(out, l0)
		}
		i = j
	}
	return out
}

// constExpr reports whether e is a literal constant.
func constExpr(e ir.Expr) bool {
	switch e.(type) {
	case *ir.Const, *ir.ConstF:
		return true
	default:
		return false
	}
}

// gen walks a function inserting runtime operations.
type gen struct {
	p    *ir.Program
	fn   *ir.Func
	plan *Plan
}

// newReg allocates a fresh register on the transformed function.
func (g *gen) newReg() int {
	r := g.fn.NumRegs
	g.fn.NumRegs++
	return r
}

// block processes statements; loops get prefetch/evict instrumentation.
func (g *gen) block(body []ir.Stmt, enclosing []*ir.Loop) {
	for _, s := range body {
		switch st := s.(type) {
		case *ir.Loop:
			g.instrumentLoop(st)
			g.block(st.Body, append(enclosing, st))
		case *ir.If:
			g.block(st.Then, enclosing)
			g.block(st.Else, enclosing)
		case *ir.Load:
			if op := g.plan.Objects[st.Obj]; op != nil && op.Native {
				st.Native = true
			}
		case *ir.Store:
			if op := g.plan.Objects[st.Obj]; op != nil {
				if op.Native {
					st.Native = true
				}
				if op.NoFetch {
					st.NoFetch = true
				}
			}
		}
	}
}

// loopAccess describes one object's direct accesses in a loop body.
type loopAccess struct {
	obj    string
	field  string // a field accessed at the sequential index (for prefetch)
	plan   *ObjectPlan
	chains []chainSite
}

// chainSite is a sequential load whose result indexes another object.
type chainSite struct {
	srcField string
	target   string
}

// instrumentLoop inserts prefetches at the top of the body and eviction
// hints at the bottom, per the object plans.
func (g *gen) instrumentLoop(l *ir.Loop) {
	accesses := g.collectAccesses(l)
	if len(accesses) == 0 {
		return
	}
	iv := func() ir.Expr { return &ir.Reg{ID: l.IVReg} }

	var pre []ir.Stmt
	var post []ir.Stmt

	// Sequential prefetches (possibly batched across fused objects).
	var seqPF []*loopAccess
	if !g.plan.SuppressPrefetchStmts {
		for _, a := range accesses {
			if a.plan.PrefetchDistance > 0 && isSeqLike(a.plan.Pattern) {
				seqPF = append(seqPF, a)
			}
		}
	}
	if len(seqPF) >= 2 && g.plan.BatchFusedPrefetch && sameLineElems(seqPF) {
		d := seqPF[0].plan.PrefetchDistance
		le := seqPF[0].plan.LineElems
		b := batchDepth(seqPF)
		// One doorbell covers b future lines of every fused object: the
		// entry list is the cross product (object × line offset), and the
		// guard widens to fire once per b line boundaries.
		var entries []ir.PrefetchRef
		for k := int64(0); k < b; k++ {
			for _, a := range seqPF {
				entries = append(entries, ir.PrefetchRef{Obj: a.obj, Index: ir.Add(iv(), ir.C(d+k*le)), Field: a.field})
			}
		}
		if p := priming(iv, l.Start, d, le, b, seqPF); p != nil {
			pre = append(pre, p)
		}
		pre = append(pre, guarded(iv, d, b*le, &ir.BatchPrefetch{Entries: entries}))
	} else {
		for _, a := range seqPF {
			d, le := a.plan.PrefetchDistance, a.plan.LineElems
			if b := a.plan.BatchLines; b >= 2 && le >= 1 {
				entries := make([]ir.PrefetchRef, b)
				for k := int64(0); k < b; k++ {
					entries[k] = ir.PrefetchRef{Obj: a.obj, Index: ir.Add(iv(), ir.C(d+k*le)), Field: a.field}
				}
				if p := priming(iv, l.Start, d, le, b, []*loopAccess{a}); p != nil {
					pre = append(pre, p)
				}
				pre = append(pre, guarded(iv, d, b*le, &ir.BatchPrefetch{Entries: entries}))
				continue
			}
			pf := &ir.Prefetch{Obj: a.obj, Index: ir.Add(iv(), ir.C(d)), Field: a.field}
			pre = append(pre, guarded(iv, d, le, pf))
		}
	}

	// Chained prefetches: load src[i+D], prefetch target[that value].
	for _, a := range accesses {
		if g.plan.SuppressPrefetchStmts {
			break
		}
		for _, ch := range a.chains {
			tplan := g.plan.Objects[ch.target]
			if tplan == nil || tplan.PrefetchDistance <= 0 || tplan.ChainedFrom != a.obj {
				continue
			}
			d := tplan.PrefetchDistance
			tmp := g.newReg()
			chainBody := []ir.Stmt{
				&ir.Load{Dst: tmp, Obj: a.obj, Index: ir.Add(iv(), ir.C(d)), Field: ch.srcField},
				&ir.Prefetch{Obj: ch.target, Index: &ir.Reg{ID: tmp}},
			}
			// Guard i+D < End so the chain load never runs past the
			// source object.
			pre = append(pre, &ir.If{
				Cond: ir.Lt(ir.Add(iv(), ir.C(d)), ir.CloneExpr(l.End)),
				Then: chainBody,
			})
		}
	}

	// Eviction hints behind the access front.
	for _, a := range accesses {
		if a.plan.EvictLag <= 0 || !isSeqLike(a.plan.Pattern) {
			continue
		}
		lag := a.plan.EvictLag
		ev := &ir.Evict{Obj: a.obj, Index: ir.Sub(iv(), ir.C(lag))}
		cond := ir.Ge(iv(), ir.C(lag))
		if a.plan.LineElems > 1 {
			cond = ir.And(cond, ir.Eq(ir.Mod(ir.Sub(iv(), ir.C(lag)), ir.C(a.plan.LineElems)), ir.C(0)))
		}
		post = append(post, &ir.If{Cond: cond, Then: []ir.Stmt{ev}})
	}

	if len(pre) > 0 || len(post) > 0 {
		l.Body = append(append(pre, l.Body...), post...)
	}
}

// guarded wraps op in a line-boundary guard: fire when (iv+d) enters a new
// line.
func guarded(iv func() ir.Expr, d, lineElems int64, op ir.Stmt) ir.Stmt {
	if lineElems <= 1 {
		return op
	}
	return &ir.If{
		Cond: ir.Eq(ir.Mod(ir.Add(iv(), ir.C(d)), ir.C(lineElems)), ir.C(0)),
		Then: []ir.Stmt{op},
	}
}

// priming builds the first-iteration doorbell of a batched prefetch stream.
// The steady-state guard first fires at the smallest iv with
// (iv+d) % (b*le) == 0 and covers indices from iv+d on, so every line in
// [Start, firstFire+d) — at most d/le + b lines — would demand-miss during
// warmup. One vectored gather on the first iteration fills that gap;
// entries past the object end or already resident are skipped at runtime.
func priming(iv func() ir.Expr, start ir.Expr, d, le, b int64, as []*loopAccess) ir.Stmt {
	if b < 2 || le < 1 {
		return nil
	}
	lines := d/le + b
	var entries []ir.PrefetchRef
	for k := int64(0); k < lines; k++ {
		for _, a := range as {
			entries = append(entries, ir.PrefetchRef{Obj: a.obj, Index: ir.Add(iv(), ir.C(k*le)), Field: a.field})
		}
	}
	return &ir.If{
		Cond: ir.Eq(iv(), ir.CloneExpr(start)),
		Then: []ir.Stmt{&ir.BatchPrefetch{Entries: entries}},
	}
}

func isSeqLike(p analysis.Pattern) bool {
	return p == analysis.PatternSequential || p == analysis.PatternStrided
}

// batchDepth picks the doorbell depth for a fused prefetch group: the widest
// requested BatchLines, floored at 1 (per-line).
func batchDepth(as []*loopAccess) int64 {
	b := int64(1)
	for _, a := range as {
		if a.plan.BatchLines > b {
			b = a.plan.BatchLines
		}
	}
	return b
}

func sameLineElems(as []*loopAccess) bool {
	for _, a := range as[1:] {
		if a.plan.LineElems != as[0].plan.LineElems {
			return false
		}
	}
	return true
}

// collectAccesses finds the planned objects accessed directly in the loop
// body (not in nested loops — those get their own instrumentation), along
// with chain sites: loads whose destination registers index other planned
// objects.
func (g *gen) collectAccesses(l *ir.Loop) []*loopAccess {
	byObj := map[string]*loopAccess{}
	var order []string
	loadDst := map[int]struct {
		obj   string
		field string
	}{}

	record := func(obj, field string) *loopAccess {
		a, ok := byObj[obj]
		if !ok {
			op := g.plan.Objects[obj]
			if op == nil {
				return nil
			}
			a = &loopAccess{obj: obj, field: field, plan: op}
			byObj[obj] = a
			order = append(order, obj)
		}
		return a
	}

	var walk func(body []ir.Stmt, nested bool)
	walk = func(body []ir.Stmt, nested bool) {
		for _, s := range body {
			switch st := s.(type) {
			case *ir.Load:
				if !nested {
					record(st.Obj, st.Field)
					loadDst[st.Dst] = struct {
						obj   string
						field string
					}{st.Obj, st.Field}
				}
				g.chainCheck(byObj, st.Obj, st.Index, loadDst)
			case *ir.Store:
				if !nested {
					record(st.Obj, st.Field)
				}
				g.chainCheck(byObj, st.Obj, st.Index, loadDst)
			case *ir.If:
				walk(st.Then, nested)
				walk(st.Else, nested)
			case *ir.Loop:
				walk(st.Body, true)
			}
		}
	}
	walk(l.Body, false)

	out := make([]*loopAccess, 0, len(order))
	for _, obj := range order {
		out = append(out, byObj[obj])
	}
	return out
}

// chainCheck records a chain site when an access's index uses a register
// loaded from another planned object.
func (g *gen) chainCheck(byObj map[string]*loopAccess, target string, index ir.Expr, loadDst map[int]struct {
	obj   string
	field string
}) {
	if g.plan.Objects[target] == nil {
		return
	}
	ir.WalkExpr(index, func(e ir.Expr) bool {
		r, ok := e.(*ir.Reg)
		if !ok {
			return true
		}
		src, ok := loadDst[r.ID]
		if !ok || src.obj == target {
			return true
		}
		if a := byObj[src.obj]; a != nil {
			for _, c := range a.chains {
				if c.target == target && c.srcField == src.field {
					return true
				}
			}
			a.chains = append(a.chains, chainSite{srcField: src.field, target: target})
		}
		return true
	})
}

// markOffloads sets the Offload flag on calls to planned functions and
// fences in-flight asynchronous work before each.
func markOffloads(body []ir.Stmt, offload map[string]bool) []ir.Stmt {
	var out []ir.Stmt
	for _, s := range body {
		switch st := s.(type) {
		case *ir.Call:
			if offload[st.Callee] {
				st.Offload = true
				out = append(out, &ir.Fence{})
			}
		case *ir.Loop:
			st.Body = markOffloads(st.Body, offload)
		case *ir.If:
			st.Then = markOffloads(st.Then, offload)
			st.Else = markOffloads(st.Else, offload)
		}
		out = append(out, s)
	}
	return out
}
