package codegen

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"mira/internal/analysis"
	"mira/internal/cache"
	"mira/internal/exec"
	"mira/internal/farmem"
	"mira/internal/ir"
	"mira/internal/rt"
	"mira/internal/sim"
)

const (
	nEdges = 4000
	nNodes = 512
)

// graphProgram is the Fig. 4 example.
func graphProgram() *ir.Program {
	b := ir.NewBuilder("graph")
	b.Object("edges", 16, nEdges, ir.F("from", 0, 8), ir.F("to", 8, 8))
	b.Object("nodes", 128, nNodes, ir.F("count", 0, 8))
	fb := b.Func("traverse")
	fb.Loop(ir.C(0), ir.C(nEdges), ir.C(1), func(i ir.Expr) {
		from := fb.Load("edges", i, "from")
		to := fb.Load("edges", i, "to")
		c1 := fb.Load("nodes", from, "count")
		fb.Store("nodes", from, "count", ir.Add(c1, ir.C(1)))
		c2 := fb.Load("nodes", to, "count")
		fb.Store("nodes", to, "count", ir.Add(c2, ir.C(1)))
	})
	return b.MustProgram()
}

// graphPlan is what the planner would produce for the example.
func graphPlan() *Plan {
	return &Plan{
		Objects: map[string]*ObjectPlan{
			"edges": {
				Object:           "edges",
				Pattern:          analysis.PatternSequential,
				PrefetchDistance: 64,  // 2x the node distance
				LineElems:        128, // 2KB lines / 16B elems
				Native:           true,
			},
			"nodes": {
				Object:           "nodes",
				Pattern:          analysis.PatternIndirect,
				PrefetchDistance: 32, // in-flight window fits the section
				LineElems:        1,  // 128B lines / 128B elems
				ChainedFrom:      "edges",
			},
		},
	}
}

func TestApplyInsertsOperations(t *testing.T) {
	p := graphProgram()
	out, err := Apply(p, graphPlan())
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	origText := ir.Print(p)
	if strings.Contains(origText, "prefetch") {
		t.Fatal("Apply mutated the input program")
	}
	text := ir.Print(out)
	for _, want := range []string{"rmem.prefetch edges[", "rmem.prefetch nodes[", "native.load edges["} {
		if !strings.Contains(text, want) {
			t.Errorf("transformed IR missing %q:\n%s", want, text)
		}
	}
	// The chain load guard: i+128 < nEdges.
	if !strings.Contains(text, "< 4000") {
		t.Errorf("chain prefetch not bounds-guarded:\n%s", text)
	}
}

// run executes a program over a two-section Mira runtime configured for the
// graph example and returns elapsed time plus the final nodes dump.
func run(t *testing.T, p *ir.Program) (sim.Duration, []byte) {
	t.Helper()
	cfg := rt.Config{
		LocalBudget: 1 << 20,
		Sections: []rt.SectionSpec{
			{Cache: cache.Config{Name: "edges", Structure: cache.Direct, LineBytes: 2048, SizeBytes: 16 << 10}},
			{Cache: cache.Config{Name: "nodes", Structure: cache.SetAssoc, Ways: 4, LineBytes: 128, SizeBytes: 16 << 10}},
		},
		Placements: map[string]rt.Placement{
			"edges": {Kind: rt.PlaceSection, Section: 0},
			"nodes": {Kind: rt.PlaceSection, Section: 1},
		},
	}
	node := farmem.NewNode(farmem.NodeConfig{Capacity: 1 << 26, CPUSlowdown: 1})
	r, err := rt.New(cfg, node)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(p); err != nil {
		t.Fatal(err)
	}
	// Deterministic edge data.
	rng := sim.NewRNG(99)
	edges := make([]byte, nEdges*16)
	for i := 0; i < nEdges; i++ {
		binary.LittleEndian.PutUint64(edges[i*16:], uint64(rng.Intn(nNodes)))
		binary.LittleEndian.PutUint64(edges[i*16+8:], uint64(rng.Intn(nNodes)))
	}
	if err := r.InitObject("edges", edges); err != nil {
		t.Fatal(err)
	}
	ex, err := exec.New(p, r, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(0)
	if _, err := ex.Run(clk); err != nil {
		t.Fatal(err)
	}
	if err := r.FlushAll(clk); err != nil {
		t.Fatal(err)
	}
	dump, err := r.DumpObject("nodes")
	if err != nil {
		t.Fatal(err)
	}
	return clk.Now().Sub(0), dump
}

func TestTransformedProgramCorrectAndFaster(t *testing.T) {
	base := graphProgram()
	baseTime, baseDump := run(t, base)

	opt, err := Apply(graphProgram(), graphPlan())
	if err != nil {
		t.Fatal(err)
	}
	optTime, optDump := run(t, opt)

	if !bytes.Equal(baseDump, optDump) {
		t.Fatal("optimized program computed different node counts")
	}
	if optTime >= baseTime {
		t.Fatalf("optimized %v not faster than baseline %v", optTime, baseTime)
	}
	t.Logf("baseline %v, optimized %v (%.2fx)", baseTime, optTime, float64(baseTime)/float64(optTime))
}

func TestLoopFusion(t *testing.T) {
	b := ir.NewBuilder("fuse")
	b.FloatArray("v", 256)
	b.FloatArray("w", 256)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(256), ir.C(1), func(i ir.Expr) {
		fb.Load("v", i, "")
	})
	fb.Loop(ir.C(0), ir.C(256), ir.C(1), func(i ir.Expr) {
		fb.Load("w", i, "")
	})
	p := b.MustProgram()
	out, err := Apply(p, &Plan{FuseLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := out.Func("main")
	loops := 0
	for _, s := range fn.Body {
		if _, ok := s.(*ir.Loop); ok {
			loops++
		}
	}
	if loops != 1 {
		t.Fatalf("after fusion: %d top-level loops, want 1:\n%s", loops, ir.Print(out))
	}
	// Fused body must reference both objects using the surviving IV.
	l := fn.Body[0].(*ir.Loop)
	objs := map[string]bool{}
	ir.Walk(l.Body, func(s ir.Stmt) bool {
		if ld, ok := s.(*ir.Load); ok {
			objs[ld.Obj] = true
			r, isReg := ld.Index.(*ir.Reg)
			if !isReg || r.ID != l.IVReg {
				t.Fatalf("fused load index not remapped to surviving IV: %s", ir.ExprString(ld.Index))
			}
		}
		return true
	})
	if !objs["v"] || !objs["w"] {
		t.Fatal("fused loop lost accesses")
	}
}

func TestFusionRespectsDependences(t *testing.T) {
	b := ir.NewBuilder("nodep")
	b.FloatArray("v", 64)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		fb.Store("v", i, "", ir.CF(1))
	})
	fb.Loop(ir.C(0), ir.C(64), ir.C(1), func(i ir.Expr) {
		fb.Load("v", i, "")
	})
	p := b.MustProgram()
	out, err := Apply(p, &Plan{FuseLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := out.Func("main")
	if len(fn.Body) != 2 {
		t.Fatalf("dependent loops fused: %d top-level stmts", len(fn.Body))
	}
}

func TestBatchedPrefetchEmission(t *testing.T) {
	b := ir.NewBuilder("batch")
	b.FloatArray("v", 512)
	b.FloatArray("w", 512)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(512), ir.C(1), func(i ir.Expr) {
		fb.Load("v", i, "")
	})
	fb.Loop(ir.C(0), ir.C(512), ir.C(1), func(i ir.Expr) {
		fb.Load("w", i, "")
	})
	p := b.MustProgram()
	plan := &Plan{
		FuseLoops:          true,
		BatchFusedPrefetch: true,
		Objects: map[string]*ObjectPlan{
			"v": {Object: "v", Pattern: analysis.PatternSequential, PrefetchDistance: 64, LineElems: 32},
			"w": {Object: "w", Pattern: analysis.PatternSequential, PrefetchDistance: 64, LineElems: 32},
		},
	}
	out, err := Apply(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Print(out)
	if !strings.Contains(text, "rmem.prefetch_batch") {
		t.Fatalf("no batched prefetch emitted:\n%s", text)
	}
	if strings.Count(text, "rmem.prefetch ") > 0 {
		t.Fatalf("separate prefetches emitted despite batching:\n%s", text)
	}
}

func TestEvictionHintEmission(t *testing.T) {
	b := ir.NewBuilder("evict")
	b.FloatArray("v", 512)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(512), ir.C(1), func(i ir.Expr) {
		fb.Load("v", i, "")
	})
	p := b.MustProgram()
	plan := &Plan{Objects: map[string]*ObjectPlan{
		"v": {Object: "v", Pattern: analysis.PatternSequential, LineElems: 32, EvictLag: 64},
	}}
	out, err := Apply(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ir.Print(out), "rmem.evict v[") {
		t.Fatalf("no eviction hint emitted:\n%s", ir.Print(out))
	}
}

func TestNoFetchAnnotation(t *testing.T) {
	b := ir.NewBuilder("nofetch")
	b.FloatArray("out", 128)
	fb := b.Func("main")
	fb.Loop(ir.C(0), ir.C(128), ir.C(1), func(i ir.Expr) {
		fb.Store("out", i, "", ir.CF(3))
	})
	p := b.MustProgram()
	plan := &Plan{Objects: map[string]*ObjectPlan{
		"out": {Object: "out", Pattern: analysis.PatternSequential, NoFetch: true},
	}}
	out, err := Apply(p, plan)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	fn, _ := out.Func("main")
	ir.Walk(fn.Body, func(s ir.Stmt) bool {
		if st, ok := s.(*ir.Store); ok && st.NoFetch {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("NoFetch not annotated")
	}
}

func TestOffloadMarking(t *testing.T) {
	b := ir.NewBuilder("off")
	b.IntArray("a", 64)
	callee := b.Func("work")
	callee.MarkNoSharedWrites()
	callee.Load("a", ir.C(0), "")
	fb := b.Func("main")
	fb.Call("work")
	b.SetEntry("main")
	p := b.MustProgram()
	out, err := Apply(p, &Plan{Offload: map[string]bool{"work": true}})
	if err != nil {
		t.Fatal(err)
	}
	text := ir.Print(out)
	if !strings.Contains(text, "rmem.call_offloaded work") {
		t.Fatalf("offload not marked:\n%s", text)
	}
	if !strings.Contains(text, "rmem.fence") {
		t.Fatalf("no fence before offloaded call:\n%s", text)
	}
}

func TestEmptyPlanIsIdentity(t *testing.T) {
	p := graphProgram()
	out, err := Apply(p, &Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Print(out) != ir.Print(p) {
		t.Fatal("empty plan changed the program")
	}
}
