package solver

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimpleTwoSections(t *testing.T) {
	p := Problem{
		Budget: 100,
		Sections: []Section{
			{Name: "seq", Start: 0, End: 10, Candidates: []Candidate{
				{SizeBytes: 10, Overhead: 0.1},
				{SizeBytes: 50, Overhead: 0.09},
			}},
			{Name: "rand", Start: 0, End: 10, Candidates: []Candidate{
				{SizeBytes: 50, Overhead: 1.0},
				{SizeBytes: 90, Overhead: 0.2},
			}},
		},
	}
	a, cost, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Best: seq@10 (0.1) + rand@90 (0.2) = 0.3; the alternative
	// seq@50 + rand@90 is over budget.
	if a["seq"] != 10 || a["rand"] != 90 {
		t.Fatalf("assignment %v", a)
	}
	if math.Abs(cost-0.3) > 1e-12 {
		t.Fatalf("cost %v, want 0.3", cost)
	}
}

func TestDisjointLifetimesShareBudget(t *testing.T) {
	// Two sections that never overlap can both take the whole budget —
	// the GPT-2 layer-by-layer pattern (§6.1).
	p := Problem{
		Budget: 100,
		Sections: []Section{
			{Name: "layer0", Start: 0, End: 5, Candidates: []Candidate{
				{SizeBytes: 100, Overhead: 0.1}, {SizeBytes: 10, Overhead: 5.0},
			}},
			{Name: "layer1", Start: 5, End: 10, Candidates: []Candidate{
				{SizeBytes: 100, Overhead: 0.1}, {SizeBytes: 10, Overhead: 5.0},
			}},
		},
	}
	a, cost, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if a["layer0"] != 100 || a["layer1"] != 100 {
		t.Fatalf("assignment %v: disjoint sections should each get full budget", a)
	}
	if math.Abs(cost-0.2) > 1e-12 {
		t.Fatalf("cost %v", cost)
	}
}

func TestInfeasible(t *testing.T) {
	p := Problem{
		Budget: 10,
		Sections: []Section{
			{Name: "a", Start: 0, End: 1, Candidates: []Candidate{{SizeBytes: 20, Overhead: 1}}},
		},
	}
	if _, _, err := Solve(p); err == nil {
		t.Fatal("infeasible problem solved")
	}
}

func TestValidation(t *testing.T) {
	bad := []Problem{
		{Budget: 0, Sections: []Section{{Name: "a", Start: 0, End: 1, Candidates: []Candidate{{SizeBytes: 1}}}}},
		{Budget: 10},
		{Budget: 10, Sections: []Section{{Name: "", Start: 0, End: 1, Candidates: []Candidate{{SizeBytes: 1}}}}},
		{Budget: 10, Sections: []Section{{Name: "a", Start: 0, End: 0, Candidates: []Candidate{{SizeBytes: 1}}}}},
		{Budget: 10, Sections: []Section{{Name: "a", Start: 0, End: 1}}},
		{Budget: 10, Sections: []Section{
			{Name: "a", Start: 0, End: 1, Candidates: []Candidate{{SizeBytes: 1}}},
			{Name: "a", Start: 0, End: 1, Candidates: []Candidate{{SizeBytes: 1}}},
		}},
	}
	for i, p := range bad {
		if _, _, err := Solve(p); err == nil {
			t.Errorf("bad problem %d accepted", i)
		}
	}
}

func TestThreeSectionPaperShape(t *testing.T) {
	// Fig. 12's shape: sequential edge section needs little; the
	// indirect node array and a uniform-random array split the rest
	// according to their curves.
	curve := func(base float64, sizes ...int64) []Candidate {
		out := make([]Candidate, len(sizes))
		for i, s := range sizes {
			out[i] = Candidate{SizeBytes: s, Overhead: base / float64(s)}
		}
		return out
	}
	p := Problem{
		Budget: 1000,
		Sections: []Section{
			{Name: "edges", Start: 0, End: 10, Candidates: []Candidate{
				{SizeBytes: 16, Overhead: 0.01}, {SizeBytes: 500, Overhead: 0.01},
			}},
			{Name: "nodes", Start: 0, End: 10, Candidates: curve(400, 100, 300, 500, 700)},
			{Name: "rand3", Start: 0, End: 10, Candidates: curve(100, 100, 300, 500, 700)},
		},
	}
	a, _, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if a["edges"] != 16 {
		t.Fatalf("sequential section given %d, want minimal 16", a["edges"])
	}
	if a["nodes"] <= a["rand3"] {
		t.Fatalf("nodes (%d) should out-size rand3 (%d): 4x steeper curve", a["nodes"], a["rand3"])
	}
}

// Property: branch-and-bound matches brute force on random instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	f := func(seedRaw uint32) bool {
		seed := uint64(seedRaw)
		rng := newLCG(seed)
		nSec := 1 + int(rng.next()%3)
		p := Problem{Budget: 100}
		for i := 0; i < nSec; i++ {
			start := int(rng.next() % 5)
			s := Section{
				Name:  string(rune('a' + i)),
				Start: start,
				End:   start + 1 + int(rng.next()%5),
			}
			nc := 1 + int(rng.next()%4)
			for c := 0; c < nc; c++ {
				s.Candidates = append(s.Candidates, Candidate{
					SizeBytes: int64(10 + rng.next()%90),
					Overhead:  float64(rng.next()%1000) / 100,
				})
			}
			p.Sections = append(p.Sections, s)
		}
		a1, c1, err1 := Solve(p)
		a2, c2, err2 := SolveBrute(p)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if math.Abs(c1-c2) > 1e-9 {
			return false
		}
		_ = a1
		_ = a2
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// newLCG is a tiny deterministic generator for property tests.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }
func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 33
}
