// Package solver implements the cache-section sizing optimization of §4.3:
// given sampled (size → overhead) curves per section and section lifetime
// intervals, choose one size per section minimizing total overhead subject
// to the constraint that at every instant the live sections' sizes sum to
// at most the local-memory budget. The paper formulates this as an ILP; the
// instance sizes here (a handful of sections × a handful of sampled sizes)
// admit an exact branch-and-bound solve, which we verify against exhaustive
// search in tests.
package solver

import (
	"fmt"
	"math"
	"sort"
)

// Candidate is one sampled size for a section.
type Candidate struct {
	SizeBytes int64
	// Overhead is the section's profiled cache performance overhead at
	// this size (§4.1 metric; lower is better).
	Overhead float64
}

// Section is one sizing variable.
type Section struct {
	Name       string
	Candidates []Candidate
	// Start/End bound the section's lifetime in abstract program time
	// (statement indices); sections whose intervals overlap contend for
	// memory simultaneously. End is exclusive.
	Start, End int
}

// Problem is a sizing instance.
type Problem struct {
	Sections []Section
	Budget   int64
}

// Assignment maps section name to chosen size.
type Assignment map[string]int64

// Solve returns the optimal assignment and its total overhead.
func Solve(p Problem) (Assignment, float64, error) {
	if err := validate(p); err != nil {
		return nil, 0, err
	}
	// Branch and bound, sections ordered by fewest candidates first for
	// early pruning.
	order := make([]int, len(p.Sections))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := len(p.Sections[order[a]].Candidates), len(p.Sections[order[b]].Candidates)
		if la != lb {
			return la < lb
		}
		return p.Sections[order[a]].Name < p.Sections[order[b]].Name
	})

	// minRemaining[i] = sum of minimum overheads of order[i:].
	minRemaining := make([]float64, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		minRemaining[i] = minRemaining[i+1] + minOverhead(p.Sections[order[i]])
	}

	times := timePoints(p.Sections)
	chosen := make([]int, len(p.Sections)) // candidate index per section
	for i := range chosen {
		chosen[i] = -1
	}
	best := math.Inf(1)
	var bestChoice []int

	var dfs func(pos int, cost float64)
	dfs = func(pos int, cost float64) {
		if cost+minRemaining[pos] >= best {
			return
		}
		if pos == len(order) {
			best = cost
			bestChoice = append([]int(nil), chosen...)
			return
		}
		si := order[pos]
		sec := p.Sections[si]
		// Try candidates in increasing overhead so the first feasible
		// full assignment is a good incumbent.
		idxs := make([]int, len(sec.Candidates))
		for i := range idxs {
			idxs[i] = i
		}
		sort.Slice(idxs, func(a, b int) bool {
			return sec.Candidates[idxs[a]].Overhead < sec.Candidates[idxs[b]].Overhead
		})
		for _, ci := range idxs {
			chosen[si] = ci
			if feasiblePartial(p, chosen, times) {
				dfs(pos+1, cost+sec.Candidates[ci].Overhead)
			}
			chosen[si] = -1
		}
	}
	dfs(0, 0)

	if bestChoice == nil {
		return nil, 0, fmt.Errorf("solver: no feasible assignment within budget %d", p.Budget)
	}
	out := Assignment{}
	for i, sec := range p.Sections {
		out[sec.Name] = sec.Candidates[bestChoice[i]].SizeBytes
	}
	return out, best, nil
}

// SolveBrute exhaustively enumerates assignments — the oracle the tests
// check Solve against.
func SolveBrute(p Problem) (Assignment, float64, error) {
	if err := validate(p); err != nil {
		return nil, 0, err
	}
	times := timePoints(p.Sections)
	best := math.Inf(1)
	var bestChoice []int
	chosen := make([]int, len(p.Sections))
	var rec func(i int, cost float64)
	rec = func(i int, cost float64) {
		if i == len(p.Sections) {
			if cost < best && feasiblePartial(p, chosen, times) {
				best = cost
				bestChoice = append([]int(nil), chosen...)
			}
			return
		}
		for ci := range p.Sections[i].Candidates {
			chosen[i] = ci
			rec(i+1, cost+p.Sections[i].Candidates[ci].Overhead)
		}
	}
	// Sentinel: mark unset as last candidate? For brute force we always
	// set all before checking, so initialize harmlessly.
	rec(0, 0)
	if bestChoice == nil {
		return nil, 0, fmt.Errorf("solver: no feasible assignment within budget %d", p.Budget)
	}
	out := Assignment{}
	for i, sec := range p.Sections {
		out[sec.Name] = sec.Candidates[bestChoice[i]].SizeBytes
	}
	return out, best, nil
}

func validate(p Problem) error {
	if p.Budget <= 0 {
		return fmt.Errorf("solver: budget %d", p.Budget)
	}
	if len(p.Sections) == 0 {
		return fmt.Errorf("solver: no sections")
	}
	seen := map[string]bool{}
	for _, s := range p.Sections {
		if s.Name == "" {
			return fmt.Errorf("solver: unnamed section")
		}
		if seen[s.Name] {
			return fmt.Errorf("solver: duplicate section %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Candidates) == 0 {
			return fmt.Errorf("solver: section %q has no candidates", s.Name)
		}
		if s.End <= s.Start {
			return fmt.Errorf("solver: section %q has empty lifetime [%d,%d)", s.Name, s.Start, s.End)
		}
		for _, c := range s.Candidates {
			if c.SizeBytes <= 0 {
				return fmt.Errorf("solver: section %q candidate size %d", s.Name, c.SizeBytes)
			}
		}
	}
	return nil
}

func minOverhead(s Section) float64 {
	m := math.Inf(1)
	for _, c := range s.Candidates {
		if c.Overhead < m {
			m = c.Overhead
		}
	}
	return m
}

// timePoints returns the interval start points — checking the constraint at
// every interval start is sufficient for interval overlap constraints.
func timePoints(secs []Section) []int {
	set := map[int]bool{}
	for _, s := range secs {
		set[s.Start] = true
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// feasiblePartial checks the budget at every time point counting only
// sections with assigned candidates.
func feasiblePartial(p Problem, chosen []int, times []int) bool {
	for _, t := range times {
		var total int64
		for i, s := range p.Sections {
			if chosen[i] < 0 {
				continue
			}
			if s.Start <= t && t < s.End {
				total += s.Candidates[chosen[i]].SizeBytes
			}
		}
		if total > p.Budget {
			return false
		}
	}
	return true
}
